#include "pisa/deparser.hpp"

namespace edp::pisa {

net::Packet Deparser::deparse(const Phv& phv) const {
  // Pooled zero-size buffer: the per-layer growth below stays inside the
  // recycled capacity, so re-emitting a packet does not allocate.
  net::Packet out(std::size_t{0});
  deparse_into(phv, out);
  return out;
}

void Deparser::deparse_into(const Phv& phv, net::Packet& out) const {
  out.clear();
  // Typical re-emits keep the original framing, so the final size is the
  // original size; reserving it up front makes the per-layer growth below
  // at most one allocation even into a fresh buffer.
  out.reserve(phv.packet.size());

  // Emit headers outermost-first by growing the buffer per layer.
  const auto grow = [&out](std::size_t n) {
    const std::size_t off = out.size();
    out.pad_to(off + n);
    return off;
  };

  if (phv.eth) {
    auto eth = *phv.eth;
    // Keep the EtherType chain consistent with header validity.
    if (phv.vlan) {
      eth.ether_type = net::kEtherTypeVlan;
    }
    eth.encode(out, grow(net::EthernetHeader::kSize));
  }
  if (phv.vlan) {
    phv.vlan->encode(out, grow(net::VlanHeader::kSize));
  }

  std::size_t ipv4_off = SIZE_MAX;
  if (phv.ipv4) {
    ipv4_off = grow(net::Ipv4Header::kSize);
    phv.ipv4->encode(out, ipv4_off);
  }
  std::size_t udp_off = SIZE_MAX;
  if (phv.tcp) {
    phv.tcp->encode(out, grow(net::TcpHeader::kSize));
  } else if (phv.udp) {
    udp_off = grow(net::UdpHeader::kSize);
    phv.udp->encode(out, udp_off);
  }
  if (phv.hula) {
    phv.hula->encode(out, grow(net::HulaProbeHeader::kSize));
  }
  if (phv.liveness) {
    phv.liveness->encode(out, grow(net::LivenessHeader::kSize));
  }
  if (phv.kv) {
    phv.kv->encode(out, grow(net::KvHeader::kSize));
  }
  if (phv.int_report) {
    phv.int_report->encode(out, grow(net::IntReportHeader::kSize));
  }

  // Unparsed payload from the original packet.
  if (phv.payload_offset < phv.packet.size()) {
    out.append(phv.packet.bytes().subspan(phv.payload_offset));
  }

  // Back-patch lengths and checksums that depend on the final size.
  if (ipv4_off != SIZE_MAX) {
    auto ip = net::Ipv4Header::decode(out, ipv4_off);
    ip.total_length = static_cast<std::uint16_t>(out.size() - ipv4_off);
    ip.update_checksum();
    ip.encode(out, ipv4_off);
  }
  if (udp_off != SIZE_MAX) {
    auto udp = net::UdpHeader::decode(out, udp_off);
    udp.length = static_cast<std::uint16_t>(out.size() - udp_off);
    udp.encode(out, udp_off);
  }

  out.meta() = phv.packet.meta();
}

}  // namespace edp::pisa
