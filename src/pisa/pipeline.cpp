#include "pisa/pipeline.hpp"

#include <utility>

namespace edp::pisa {

void Pipeline::add_stage(std::string stage_name,
                         std::function<void(Phv&)> logic) {
  stages_.push_back(Stage{std::move(stage_name), std::move(logic), 0});
}

void Pipeline::process(Phv& phv) {
  ++phvs_;
  for (auto& s : stages_) {
    if (stop_on_drop_ && phv.std_meta.drop) {
      return;
    }
    ++s.phvs_processed;
    if (s.logic) {
      s.logic(phv);
    }
  }
}

}  // namespace edp::pisa
