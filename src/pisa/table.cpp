#include "pisa/table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace edp::pisa {

MatchActionTable::MatchActionTable(std::string name,
                                   std::vector<MatchField> schema,
                                   std::size_t capacity)
    : name_(std::move(name)), schema_(std::move(schema)), capacity_(capacity) {
  all_exact_ = std::all_of(schema_.begin(), schema_.end(), [](const auto& f) {
    return f.kind == MatchKind::kExact;
  });
}

void MatchActionTable::set_default_action(std::string action_name,
                                          Action action, ActionData data) {
  default_name_ = std::move(action_name);
  default_action_ = std::move(action);
  default_data_ = std::move(data);
}

std::string MatchActionTable::hash_key(
    std::span<const std::uint64_t> key) const {
  std::string s;
  s.reserve(key.size() * 8);
  for (const std::uint64_t v : key) {
    for (int i = 0; i < 8; ++i) {
      s.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  return s;
}

bool MatchActionTable::insert(TableEntry entry) {
  if (entries_.size() >= capacity_ || entry.key.size() != schema_.size()) {
    return false;
  }
  if (all_exact_) {
    std::vector<std::uint64_t> vals;
    vals.reserve(entry.key.size());
    for (const auto& f : entry.key) {
      vals.push_back(f.value);
    }
    const std::string k = hash_key(vals);
    if (exact_index_.contains(k)) {
      return false;  // duplicate exact key
    }
    exact_index_.emplace(k, entries_.size());
  }
  entry.spec_bits = specificity(entry);
  entries_.push_back(std::move(entry));
  return true;
}

std::size_t MatchActionTable::erase(const std::vector<KeyField>& key) {
  std::size_t removed = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    const auto& ek = entries_[i].key;
    if (ek.size() != key.size()) {
      continue;
    }
    bool same = true;
    for (std::size_t f = 0; f < key.size(); ++f) {
      if (ek[f].value != key[f].value || ek[f].mask != key[f].mask ||
          ek[f].prefix_len != key[f].prefix_len) {
        same = false;
        break;
      }
    }
    if (same) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
  }
  if (removed > 0 && all_exact_) {
    exact_index_.clear();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::vector<std::uint64_t> vals;
      for (const auto& f : entries_[i].key) {
        vals.push_back(f.value);
      }
      exact_index_.emplace(hash_key(vals), i);
    }
  }
  return removed;
}

void MatchActionTable::clear() {
  entries_.clear();
  exact_index_.clear();
}

bool MatchActionTable::entry_matches(
    const TableEntry& e, std::span<const std::uint64_t> key) const {
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    const std::uint64_t have = key[f];
    const KeyField& want = e.key[f];
    switch (schema_[f].kind) {
      case MatchKind::kExact:
        if (have != want.value) {
          return false;
        }
        break;
      case MatchKind::kLpm: {
        const int width = schema_[f].width_bits;
        const int plen = std::clamp(want.prefix_len, 0, width);
        if (plen == 0) {
          break;  // 0-length prefix matches everything
        }
        const std::uint64_t mask =
            plen >= 64 ? ~0ULL : ~((1ULL << (width - plen)) - 1);
        if ((have & mask) != (want.value & mask)) {
          return false;
        }
        break;
      }
      case MatchKind::kTernary:
        if ((have & want.mask) != (want.value & want.mask)) {
          return false;
        }
        break;
    }
  }
  return true;
}

int MatchActionTable::specificity(const TableEntry& e) const {
  int bits = 0;
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    switch (schema_[f].kind) {
      case MatchKind::kExact:
        bits += schema_[f].width_bits;
        break;
      case MatchKind::kLpm:
        bits += std::clamp(e.key[f].prefix_len, 0, schema_[f].width_bits);
        break;
      case MatchKind::kTernary:
        bits += std::popcount(e.key[f].mask);
        break;
    }
  }
  return bits;
}

LookupResult MatchActionTable::lookup(
    std::span<const std::uint64_t> key) const {
  ++lookups_;
  if (key.size() != schema_.size()) {
    ++misses_;
    return {};
  }
  if (all_exact_) {
    const auto it = exact_index_.find(hash_key(key));
    if (it == exact_index_.end()) {
      ++misses_;
      return {};
    }
    const TableEntry& e = entries_[it->second];
    ++e.hits;
    return {true, &e};
  }
  // LPM/ternary: best (most specific, then highest priority) match wins.
  const TableEntry* best = nullptr;
  int best_spec = -1;
  for (const auto& e : entries_) {
    if (!entry_matches(e, key)) {
      continue;
    }
    const int spec = e.spec_bits;
    if (best == nullptr || spec > best_spec ||
        (spec == best_spec && e.priority > best->priority)) {
      best = &e;
      best_spec = spec;
    }
  }
  if (best == nullptr) {
    ++misses_;
    return {};
  }
  ++best->hits;
  return {true, best};
}

bool MatchActionTable::apply(Phv& phv,
                             std::span<const std::uint64_t> key) const {
  const LookupResult r = lookup(key);
  if (r.hit) {
    if (r.entry->action) {
      r.entry->action(phv, r.entry->data);
    }
    return true;
  }
  if (default_action_) {
    default_action_(phv, default_data_);
  }
  return false;
}

bool MatchActionTable::apply(
    Phv& phv,
    const std::function<std::vector<std::uint64_t>(const Phv&)>& key_fn)
    const {
  const std::vector<std::uint64_t> key = key_fn(phv);
  return apply(phv, std::span<const std::uint64_t>(key));
}

}  // namespace edp::pisa
