// edp::pisa — deparser: serialize a PHV back to a wire packet.
#pragma once

#include "pisa/phv.hpp"

namespace edp::pisa {

/// Re-emits the valid headers of `phv` in canonical order (Ethernet, VLAN,
/// IPv4, TCP/UDP, app headers), followed by the unparsed payload bytes of
/// the original packet. IPv4 total_length/checksum are recomputed so a
/// program that rewrites fields always emits a consistent packet.
///
/// The packet's intrinsic metadata (arrival, trace id) is carried over.
class Deparser {
 public:
  net::Packet deparse(const Phv& phv) const;
};

}  // namespace edp::pisa
