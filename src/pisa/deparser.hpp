// edp::pisa — deparser: serialize a PHV back to a wire packet.
#pragma once

#include "pisa/phv.hpp"

namespace edp::pisa {

/// Re-emits the valid headers of `phv` in canonical order (Ethernet, VLAN,
/// IPv4, TCP/UDP, app headers), followed by the unparsed payload bytes of
/// the original packet. IPv4 total_length/checksum are recomputed so a
/// program that rewrites fields always emits a consistent packet.
///
/// The packet's intrinsic metadata (arrival, trace id) is carried over.
class Deparser {
 public:
  net::Packet deparse(const Phv& phv) const;

  /// Same emit, but into a caller-provided packet (cleared first; capacity
  /// is kept). The byte output is identical to deparse() — this form exists
  /// so hot paths that hand the result to a long-lived owner (e.g. a
  /// traffic-manager queue) can build it in place instead of emitting into
  /// a pooled buffer and copying out of it.
  void deparse_into(const Phv& phv, net::Packet& out) const;
};

}  // namespace edp::pisa
