#include "pisa/register.hpp"

namespace edp::pisa {

bool PortUsage::try_acquire(std::uint64_t cycle) {
  if (cycle != current_cycle_) {
    current_cycle_ = cycle;
    used_this_cycle_ = 0;
  }
  if (used_this_cycle_ >= ports_) {
    ++contention_;
    return false;
  }
  ++used_this_cycle_;
  ++acquired_;
  return true;
}

bool PortUsage::available(std::uint64_t cycle) const {
  if (cycle != current_cycle_) {
    return ports_ >= 1;
  }
  return used_this_cycle_ < ports_;
}

}  // namespace edp::pisa
