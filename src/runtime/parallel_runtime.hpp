// edp::runtime — sharded parallel simulation runtime.
//
// Partitions a topo::Spec into shards (one sim::Scheduler + one
// topo::Network of owned switches/hosts per shard), runs the shards on a
// persistent worker pool, and exchanges cross-shard packet deliveries
// through bounded lock-free SPSC rings (spsc_ring.hpp).
//
// Synchronization is conservative, and *adaptive*: instead of one global
// window equal to the minimum cut-link delay, each shard advances per round
// to the earliest time another shard could still affect it. Let L(j, i) be
// the directed pair lookahead (minimum delay over cut links from shard j
// into shard i, ShardPlan::pair_lookahead_ps) and N_j shard j's earliest
// pending event. The *earliest activity bound* E_j — the earliest instant
// shard j could ever execute anything from the next round on — is the least
// fixpoint of
//
//   E_j = min(N_j, min over incoming k of min(E_k + L(k, j), M(k, j)))
//
// where M(k, j) is the earliest delivery time among messages already in
// flight in the k->j channel. Any future message into shard i therefore
// arrives at or after min_j(E_j + L(j, i)), so shard i may run the window
//
//   wend_i = min(deadline, min over incoming j of E_j + L(j, i) - 1 ps)
//
// using only information it already has (the -1 ps keeps the bound strict,
// exactly like the old (T, T+L] window rule). Three consequences:
//
//   * shards separated by multiple hops get multi-hop lookahead (the
//     fixpoint is a shortest-path relaxation over the shard graph);
//   * an idle shard (N = infinity) imposes no bound, so quiescent phases
//     fast-forward in one round instead of barriering once per min delay;
//   * pair delays enter individually — one short link no longer drags
//     every other pair's window down.
//
// The round loop (one barrier per round, not two): each worker, for every
// shard it owns, (1) computes wend from the previous round's published
// snapshot, (2) drains the previous round's inbound rings into the shard
// scheduler, (3) runs the shard to wend, pushing cross-shard sends into the
// *current* round's rings and publishing (now, next-event, in-flight-min)
// for the next round, then (4) barriers. Rings, in-flight minima and clock
// snapshots are double-buffered by round parity, so round q's producers
// never touch what round q's consumers read — the single barrier is the
// only ordering needed.
//
// Worker pool: created once (construction), parked on a condition variable
// between run_until() calls — the scenario engine's repeated-run pattern no
// longer pays a spawn+join per call. The pool is core-aware: by default
// min(num_shards, hardware threads) workers multiplex the shards, so an
// oversubscribed machine (more shards than cores) runs the round loop
// without futex ping-pong; RuntimeOptions::max_workers forces a size.
//
// Determinism: window boundaries are computed from published snapshots that
// are pure functions of simulation state, drains replay in fixed source-
// shard order with per-ring FIFO, and sequence numbers are minted in drain
// order — so a parallel run is bit-reproducible and matches the sequential
// scheduler exactly as long as the workload does not contain cross-switch
// same-picosecond ties (see docs/RUNTIME.md for the precise statement).
// The determinism property test in tests/test_runtime.cpp checks
// parallel-vs-sequential equality across seeds and shard counts.
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/packet.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/scheduler.hpp"
#include "topo/network.hpp"
#include "topo/spec.hpp"

namespace edp::runtime {

struct RuntimeOptions {
  /// Per-channel SPSC ring capacity (rounded up to a power of two). When a
  /// ring fills mid-window the producer falls back to an overflow vector —
  /// correctness and FIFO order are preserved, only the lock-free fast
  /// path is lost (counted in overflow_messages()).
  std::size_t ring_capacity = 4096;
  /// Run single-shard plans inline on the caller's thread (no worker).
  bool inline_single_shard = true;
  /// Worker pool size: 0 = min(num_shards, hardware threads). Values above
  /// num_shards are clamped. With one worker the round loop runs inline on
  /// the caller's thread (no pool threads, no barrier) — the right shape
  /// for machines with fewer cores than shards.
  std::size_t max_workers = 0;
};

class ParallelRuntime {
 public:
  /// Builds one Network per shard from `spec`/`plan`. Switch configs get
  /// their `shard_id` tag filled in. Cut links become ring endpoints; the
  /// runtime does not support failing a cut link (intra-shard links keep
  /// full failure injection through link()).
  ParallelRuntime(const topo::Spec& spec, topo::ShardPlan plan,
                  RuntimeOptions options = {});
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  // ---- topology access (spec/global indices) --------------------------------
  // Valid before and after run_until(), not during (workers own the shards
  // while running).

  core::EventSwitch& sw(std::size_t spec_index);
  topo::Host& host(std::size_t spec_index);
  /// The shard-local Link for an intra-shard spec link. Cut links have no
  /// Link object; asserts on a cut index. O(1) via the owner-shard table.
  topo::Link& link(std::size_t spec_index);

  std::size_t shard_of_switch(std::size_t spec_index) const {
    return plan_.switch_shard[spec_index];
  }
  std::size_t shard_of_host(std::size_t spec_index) const {
    return plan_.host_shard[spec_index];
  }

  /// The scheduler that owns a node — traffic generators and timers driving
  /// that node must be created on it.
  sim::Scheduler& scheduler_of_switch(std::size_t spec_index);
  sim::Scheduler& scheduler_of_host(std::size_t spec_index);
  sim::Scheduler& shard_scheduler(std::size_t shard);

  // ---- execution ------------------------------------------------------------

  /// Advance every shard to `deadline` using adaptive windowed execution.
  /// Callable repeatedly; shards always share a common time at return.
  void run_until(sim::Time deadline);

  // ---- introspection --------------------------------------------------------

  std::size_t num_shards() const { return plan_.num_shards; }
  /// Threads actually executing shards (<= num_shards; 1 means the round
  /// loop runs inline on the caller).
  std::size_t num_workers() const { return pool_size_; }
  const topo::ShardPlan& plan() const { return plan_; }
  /// Global minimum cut delay (nullopt = no cut links). The adaptive
  /// windows use the per-pair matrix; this is the worst-case floor.
  std::optional<sim::Time> lookahead() const { return plan_.lookahead; }
  sim::Time now() const;

  /// Total callbacks executed across all shard schedulers.
  std::uint64_t total_executed() const;
  /// Cross-shard packets exchanged / of those, ones that hit a full ring.
  std::uint64_t cross_shard_messages() const;
  std::uint64_t overflow_messages() const;
  /// Consumer-side burst-drain statistics: nonempty ring burst pops and the
  /// messages they moved (ring_drained()/ring_drains() = avg burst size).
  std::uint64_t ring_drains() const;
  std::uint64_t ring_drained() const;
  /// Synchronization rounds executed by run_until() calls (cumulative).
  /// Every path counts one per round: the inline single-shard fast path
  /// runs exactly one round per call, the pooled/multiplexed paths one per
  /// barrier crossing.
  std::uint64_t windows() const { return windows_; }

 private:
  /// One enqueued cross-shard delivery. `deliver` is absolute simulated
  /// time; the destination is pre-resolved to a shard-local node.
  struct Msg {
    sim::Time deliver;
    bool to_host = false;
    std::uint32_t local_index = 0;  ///< shard-local switch/host index
    std::uint16_t port = 0;         ///< switch receive port (unused for hosts)
    net::Packet pkt;
  };

  /// Directed shard-pair transport for one round parity: SPSC ring + FIFO
  /// overflow fallback. All accesses are phase-separated by the round
  /// barrier — the producer writes a parity only during rounds of that
  /// parity, the consumer reads it only during rounds of the opposite
  /// parity — so `overflow` needs no lock; `debug_phase` asserts the
  /// invariant in debug builds (see push()/drain_inbound()).
  struct Channel {
    explicit Channel(std::size_t cap) : ring(cap) { overflow.reserve(cap); }
    SpscRing<Msg> ring;
    std::vector<Msg> overflow;  ///< used only after the ring fills
    std::uint64_t pushed = 0;       ///< producer-side count
    std::uint64_t overflowed = 0;   ///< producer-side count
#ifndef NDEBUG
    /// 0 = idle, 1 = producer pushing, 2 = consumer draining. Never both:
    /// the barrier separates the phases. Relaxed is enough — we only check
    /// mutual exclusion, the barrier provides the ordering.
    std::atomic<int> debug_phase{0};
#endif
  };

  /// Per-shard published clock snapshot, double-buffered by round parity.
  /// Written by the owning worker before the round barrier, read by every
  /// worker after it (the barrier is the synchronization). Padded so two
  /// workers never share a line.
  struct alignas(64) ClockSnap {
    std::int64_t now_ps = 0;
    std::int64_t next_ps = 0;  ///< kInfinity when the shard queue is empty
  };

  struct Shard {
    std::unique_ptr<sim::Scheduler> sched;
    std::unique_ptr<topo::Network> net;
    // spec index -> shard-local index (ShardPlan::npos when not local)
    std::vector<std::size_t> switch_local;
    std::vector<std::size_t> host_local;
    /// Current round parity, read by this shard's TX closures mid-run to
    /// pick the outbound ring set. Only the owning worker writes it.
    std::size_t parity = 0;
    /// Fixed-size scratch for DPDK-style ring burst pops (worker-owned).
    std::vector<Msg> drain_burst;
    /// Staged deliveries handed to the scheduler as one inject_batch call.
    std::vector<sim::Scheduler::BatchItem> inject_burst;
    // Consumer-side drain statistics (read after the workers park).
    std::uint64_t ring_drains = 0;    ///< burst pops that returned >= 1 msg
    std::uint64_t ring_drained = 0;   ///< messages moved by those bursts
  };

  static constexpr std::int64_t kInfinity = topo::ShardPlan::kNoChannel;

  Channel* channel(std::size_t parity, std::size_t src, std::size_t dst) {
    return channels_[parity * plan_.num_shards * plan_.num_shards +
                     src * plan_.num_shards + dst]
        .get();
  }

  void push(std::size_t src, std::size_t dst, Msg&& m);
  void drain_inbound(std::size_t shard, std::size_t parity);
  /// Least fixpoint of the earliest-activity bound over the shard graph,
  /// from the parity-`snap` snapshot (Bellman-style relaxation; identical
  /// on every worker because the inputs are identical).
  void compute_activity_bounds(std::size_t snap, std::int64_t* e) const;
  /// One full round for every shard owned by `worker`; returns true when
  /// every shard has reached `deadline` (same verdict on every worker).
  bool run_round(std::size_t worker, std::uint64_t q, sim::Time deadline,
                 std::int64_t* e);
  /// The adaptive round loop (all workers, or inline when pool_size_ == 1).
  void run_rounds(std::size_t worker, sim::Time deadline);
  void pool_main(std::size_t worker);

  topo::ShardPlan plan_;
  RuntimeOptions options_;
  std::vector<Shard> shards_;
  /// channels_[parity * n * n + src * n + dst]; null on the diagonal and
  /// for pairs with no cut link between them. Producers fill parity q&1
  /// during round q; consumers drain it during round q+1.
  std::vector<std::unique_ptr<Channel>> channels_;
  /// Directed pair lookahead in ps (kInfinity = no channel), from the plan.
  std::vector<std::int64_t> pair_lookahead_ps_;
  /// clock_[parity][shard]: snapshot published at the end of each round.
  std::vector<ClockSnap> clock_[2];
  /// inflight_[parity][src * n + dst]: minimum delivery time among messages
  /// pushed into that channel during the round of that parity (kInfinity
  /// when none). Row `src` is written only by shard src's worker.
  std::vector<std::int64_t> inflight_[2];
  /// spec link index -> owning shard (npos for cut links): O(1) link().
  std::vector<std::size_t> link_owner_;
  /// spec link index -> shard-local link index (npos for cut links).
  std::vector<std::size_t> link_local_;

  std::uint64_t round_ = 0;   ///< next round index; parity persists across calls
  std::uint64_t windows_ = 0;

  // ---- persistent worker pool (created when pool_size_ > 1) ---------------
  std::size_t pool_size_ = 1;
  std::size_t shards_per_worker_ = 0;
  std::vector<std::thread> pool_;
  std::unique_ptr<std::barrier<>> round_barrier_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;   ///< workers wait for a new job epoch
  std::condition_variable done_cv_;   ///< caller waits for running_ == 0
  std::uint64_t job_epoch_ = 0;
  std::size_t running_ = 0;
  sim::Time job_deadline_;
  bool stop_ = false;
  /// Per-worker scratch for the activity-bound fixpoint (indexed by worker).
  std::vector<std::vector<std::int64_t>> bound_scratch_;
};

}  // namespace edp::runtime
