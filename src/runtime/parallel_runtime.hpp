// edp::runtime — sharded parallel simulation runtime.
//
// Partitions a topo::Spec into shards (one sim::Scheduler + one
// topo::Network of owned switches/hosts per shard), runs each shard on its
// own worker thread, and exchanges cross-shard packet deliveries through
// bounded lock-free SPSC rings (spsc_ring.hpp).
//
// Synchronization is conservative time-windowed execution. Let L be the
// *lookahead*: the minimum propagation delay over cut links (links whose
// endpoints live in different shards, see topo::plan_shards). A packet sent
// across a cut at local time t cannot arrive before t + L, so every shard
// may execute its local events for the window (T, T+L] without observing
// any input produced inside that window by another shard. The window loop:
//
//   1. each worker runs its scheduler up to the window end (events with
//      time <= T+L fire; cross-shard sends are pushed into rings tagged
//      with their absolute delivery time);
//   2. barrier — all workers are parked, all rings quiescent;
//   3. each worker drains its inbound rings in fixed source-shard order and
//      injects the deliveries into its scheduler at their delivery times
//      (all >= T+L, i.e. strictly inside a later window);
//   4. barrier — no worker starts the next window until every drain is done
//      (otherwise a fast producer's next-window pushes could race a slow
//      consumer's drain and make the injection order timing-dependent).
//
// Determinism: shard construction, window boundaries, ring drain order, and
// per-ring FIFO order are all functions of (spec, plan, seed) only — never
// of thread timing — so a parallel run is bit-reproducible, and it matches
// the sequential scheduler exactly as long as the workload does not contain
// cross-switch same-picosecond ties (see docs/RUNTIME.md for the precise
// statement). The determinism property test in tests/test_runtime.cpp
// checks parallel-vs-sequential equality across seeds and shard counts.
#pragma once

#include <barrier>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/packet.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/scheduler.hpp"
#include "topo/network.hpp"
#include "topo/spec.hpp"

namespace edp::runtime {

struct RuntimeOptions {
  /// Per-channel SPSC ring capacity (rounded up to a power of two). When a
  /// ring fills mid-window the producer falls back to a mutex-protected
  /// overflow vector — correctness and FIFO order are preserved, only the
  /// lock-free fast path is lost (counted in overflow_messages()).
  std::size_t ring_capacity = 4096;
  /// Run single-shard plans inline on the caller's thread (no worker).
  bool inline_single_shard = true;
};

class ParallelRuntime {
 public:
  /// Builds one Network per shard from `spec`/`plan`. Switch configs get
  /// their `shard_id` tag filled in. Cut links become ring endpoints; the
  /// runtime does not support failing a cut link (intra-shard links keep
  /// full failure injection through link()).
  ParallelRuntime(const topo::Spec& spec, topo::ShardPlan plan,
                  RuntimeOptions options = {});
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  // ---- topology access (spec/global indices) --------------------------------
  // Valid before and after run_until(), not during (workers own the shards
  // while running).

  core::EventSwitch& sw(std::size_t spec_index);
  topo::Host& host(std::size_t spec_index);
  /// The shard-local Link for an intra-shard spec link. Cut links have no
  /// Link object; asserts on a cut index.
  topo::Link& link(std::size_t spec_index);

  std::size_t shard_of_switch(std::size_t spec_index) const {
    return plan_.switch_shard[spec_index];
  }
  std::size_t shard_of_host(std::size_t spec_index) const {
    return plan_.host_shard[spec_index];
  }

  /// The scheduler that owns a node — traffic generators and timers driving
  /// that node must be created on it.
  sim::Scheduler& scheduler_of_switch(std::size_t spec_index);
  sim::Scheduler& scheduler_of_host(std::size_t spec_index);
  sim::Scheduler& shard_scheduler(std::size_t shard);

  // ---- execution ------------------------------------------------------------

  /// Advance every shard to `deadline` using windowed parallel execution.
  /// Callable repeatedly; shards always share a common time at return.
  void run_until(sim::Time deadline);

  // ---- introspection --------------------------------------------------------

  std::size_t num_shards() const { return plan_.num_shards; }
  const topo::ShardPlan& plan() const { return plan_; }
  /// Conservative window length (nullopt = no cut links, one window).
  std::optional<sim::Time> lookahead() const { return plan_.lookahead; }
  sim::Time now() const;

  /// Total callbacks executed across all shard schedulers.
  std::uint64_t total_executed() const;
  /// Cross-shard packets exchanged / of those, ones that hit a full ring.
  std::uint64_t cross_shard_messages() const;
  std::uint64_t overflow_messages() const;
  /// Consumer-side burst-drain statistics: nonempty ring burst pops and the
  /// messages they moved (ring_drained()/ring_drains() = avg burst size).
  std::uint64_t ring_drains() const;
  std::uint64_t ring_drained() const;
  /// Barrier windows executed by the last run_until() calls (cumulative).
  std::uint64_t windows() const { return windows_; }

 private:
  /// One enqueued cross-shard delivery. `deliver` is absolute simulated
  /// time; the destination is pre-resolved to a shard-local node.
  struct Msg {
    sim::Time deliver;
    bool to_host = false;
    std::uint32_t local_index = 0;  ///< shard-local switch/host index
    std::uint16_t port = 0;         ///< switch receive port (unused for hosts)
    net::Packet pkt;
  };

  /// Directed shard-pair transport: SPSC ring + FIFO overflow fallback.
  struct Channel {
    explicit Channel(std::size_t cap) : ring(cap) { overflow.reserve(cap); }
    SpscRing<Msg> ring;
    std::mutex overflow_mu;
    std::vector<Msg> overflow;  ///< used only after the ring fills
    std::uint64_t pushed = 0;       ///< producer-side count
    std::uint64_t overflowed = 0;   ///< producer-side count
  };

  struct Shard {
    std::unique_ptr<sim::Scheduler> sched;
    std::unique_ptr<topo::Network> net;
    // spec index -> shard-local index (ShardPlan::npos when not local)
    std::vector<std::size_t> switch_local;
    std::vector<std::size_t> host_local;
    std::vector<std::size_t> link_local;
    /// Fixed-size scratch for DPDK-style ring burst pops (worker-owned).
    std::vector<Msg> drain_burst;
    /// Staged deliveries handed to the scheduler as one inject_batch call.
    std::vector<sim::Scheduler::BatchItem> inject_burst;
    // Consumer-side drain statistics (read after the workers join).
    std::uint64_t ring_drains = 0;    ///< burst pops that returned >= 1 msg
    std::uint64_t ring_drained = 0;   ///< messages moved by those bursts
  };

  void push(Channel& ch, Msg&& m);
  void drain_inbound(std::size_t shard);
  void worker_loop(std::size_t shard, sim::Time start, sim::Time deadline,
                   sim::Time window, std::barrier<>& bar);

  topo::ShardPlan plan_;
  RuntimeOptions options_;
  std::vector<Shard> shards_;
  /// channels_[src * num_shards + dst]; null on the diagonal and for pairs
  /// with no cut link between them.
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint64_t windows_ = 0;
};

}  // namespace edp::runtime
