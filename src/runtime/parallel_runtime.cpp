#include "runtime/parallel_runtime.hpp"

#include <algorithm>
#include <cassert>

namespace edp::runtime {

namespace {
constexpr std::size_t kNpos = topo::ShardPlan::npos;
/// Ring messages moved per burst pop (DPDK burst-size ballpark): large
/// enough to amortize the atomic head publish and the inject_batch call,
/// small enough to keep the scratch resident in L1/L2.
constexpr std::size_t kDrainBurst = 256;

std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t inf = topo::ShardPlan::kNoChannel;
  return (a >= inf - b) ? inf : a + b;
}
}  // namespace

ParallelRuntime::ParallelRuntime(const topo::Spec& spec, topo::ShardPlan plan,
                                 RuntimeOptions options)
    : plan_(std::move(plan)), options_(options) {
  const std::size_t n = plan_.num_shards;
  assert(n >= 1);
  assert(plan_.switch_shard.size() == spec.num_switches());
  assert(plan_.host_shard.size() == spec.num_hosts());
  assert(plan_.pair_lookahead_ps.size() == n * n &&
         "plan predates the per-pair lookahead matrix; rebuild it with "
         "topo::plan_shards");

  shards_.resize(n);
  channels_.resize(2 * n * n);
  pair_lookahead_ps_ = plan_.pair_lookahead_ps;
  clock_[0].resize(n);
  clock_[1].resize(n);
  inflight_[0].assign(n * n, kInfinity);
  inflight_[1].assign(n * n, kInfinity);
  link_owner_.assign(spec.num_links(), kNpos);
  link_local_.assign(spec.num_links(), kNpos);
  for (auto& sh : shards_) {
    sh.sched = std::make_unique<sim::Scheduler>();     // hotpath-ok: setup
    sh.net = std::make_unique<topo::Network>(*sh.sched);  // hotpath-ok: setup
    sh.switch_local.assign(spec.num_switches(), kNpos);
    sh.host_local.assign(spec.num_hosts(), kNpos);
    sh.drain_burst.resize(kDrainBurst);    // hotpath-ok: setup
    sh.inject_burst.reserve(kDrainBurst);  // hotpath-ok: setup
  }

  // Nodes first (links reference them), in spec order so the sequential and
  // sharded builds enumerate identically.
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    const std::size_t s = plan_.switch_shard[i];
    core::EventSwitchConfig cfg = spec.switch_config(i);
    cfg.shard_id = static_cast<std::uint32_t>(s);
    shards_[s].switch_local[i] = shards_[s].net->add_switch(std::move(cfg));
  }
  for (std::size_t i = 0; i < spec.num_hosts(); ++i) {
    const std::size_t s = plan_.host_shard[i];
    shards_[s].host_local[i] = shards_[s].net->add_host(spec.host_config(i));
  }

  // Channels exist for every directed shard pair joined by at least one cut
  // link (both directions: links are full duplex), one per round parity.
  for (std::size_t l : plan_.cut_links) {
    const auto& ls = spec.link_spec(l);
    const std::size_t sa =
        ls.host_side ? plan_.host_shard[ls.a] : plan_.switch_shard[ls.a];
    const std::size_t sb = plan_.switch_shard[ls.b];
    for (auto [src, dst] : {std::pair{sa, sb}, std::pair{sb, sa}}) {
      for (std::size_t parity : {std::size_t{0}, std::size_t{1}}) {
        auto& ch =
            channels_[parity * n * n + src * n + dst];
        if (!ch) {
          ch = std::make_unique<Channel>(options_.ring_capacity);  // hotpath-ok: setup
        }
      }
    }
  }

  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    const std::size_t sa =
        ls.host_side ? plan_.host_shard[ls.a] : plan_.switch_shard[ls.a];
    const std::size_t sb = plan_.switch_shard[ls.b];

    if (sa == sb) {
      Shard& sh = shards_[sa];
      const std::size_t local =
          ls.host_side
              ? sh.net->connect_host(sh.host_local[ls.a],
                                     sh.switch_local[ls.b], ls.pb, ls.config)
              : sh.net->connect_switches(sh.switch_local[ls.a], ls.pa,
                                         sh.switch_local[ls.b], ls.pb,
                                         ls.config);
      link_owner_[l] = sa;
      link_local_[l] = local;
      continue;
    }

    // Cut link: each side transmits into the directed channel toward the
    // peer's shard (parity chosen at push time); deliveries are injected at
    // the next round's drain. The producer stamps the absolute arrival time
    // (its now() + link delay).
    const sim::Time delay = ls.config.delay;

    // B side is always a switch.
    core::EventSwitch& swb =
        shards_[sb].net->sw(shards_[sb].switch_local[ls.b]);
    sim::Scheduler* sched_a = shards_[sa].sched.get();
    sim::Scheduler* sched_b = shards_[sb].sched.get();
    const auto b_local = static_cast<std::uint32_t>(shards_[sb].switch_local[ls.b]);
    const std::uint16_t pb = ls.pb;

    if (ls.host_side) {
      topo::Host& ha = shards_[sa].net->host(shards_[sa].host_local[ls.a]);
      const auto a_local =
          static_cast<std::uint32_t>(shards_[sa].host_local[ls.a]);
      ha.connect_tx([this, sa, sb, sched_a, delay, b_local, pb](net::Packet p) {
        push(sa, sb, Msg{sched_a->now() + delay, /*to_host=*/false, b_local,
                         pb, std::move(p)});
      });
      swb.connect_tx(pb, [this, sb, sa, sched_b, delay, a_local](net::Packet p) {
        push(sb, sa, Msg{sched_b->now() + delay, /*to_host=*/true, a_local, 0,
                         std::move(p)});
      });
    } else {
      core::EventSwitch& swa =
          shards_[sa].net->sw(shards_[sa].switch_local[ls.a]);
      const auto a_local =
          static_cast<std::uint32_t>(shards_[sa].switch_local[ls.a]);
      const std::uint16_t pa = ls.pa;
      swa.connect_tx(pa, [this, sa, sb, sched_a, delay, b_local, pb](net::Packet p) {
        push(sa, sb, Msg{sched_a->now() + delay, /*to_host=*/false, b_local,
                         pb, std::move(p)});
      });
      swb.connect_tx(pb, [this, sb, sa, sched_b, delay, a_local, pa](net::Packet p) {
        push(sb, sa, Msg{sched_b->now() + delay, /*to_host=*/false, a_local,
                         pa, std::move(p)});
      });
    }
  }

  // Persistent worker pool, sized to the hardware: more workers than cores
  // just trade real work for futex ping-pong, so by default each worker
  // multiplexes a contiguous block of shards and the pool never exceeds
  // the machine. One worker (or one shard) runs inline on the caller.
  std::size_t want = options_.max_workers;
  if (want == 0) {
    want = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool_size_ = std::min(n, want);
  shards_per_worker_ = (n + pool_size_ - 1) / pool_size_;
  bound_scratch_.assign(pool_size_, std::vector<std::int64_t>(n, kInfinity));
  if (pool_size_ > 1) {
    round_barrier_ = std::make_unique<std::barrier<>>(  // hotpath-ok: setup
        static_cast<std::ptrdiff_t>(pool_size_));
    pool_.reserve(pool_size_);
    for (std::size_t w = 0; w < pool_size_; ++w) {
      pool_.emplace_back([this, w] { pool_main(w); });
    }
  }
}

ParallelRuntime::~ParallelRuntime() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      stop_ = true;
    }
    pool_cv_.notify_all();
    for (auto& t : pool_) {
      t.join();
    }
  }
}

core::EventSwitch& ParallelRuntime::sw(std::size_t spec_index) {
  Shard& sh = shards_[plan_.switch_shard[spec_index]];
  assert(sh.switch_local[spec_index] != kNpos);
  return sh.net->sw(sh.switch_local[spec_index]);
}

topo::Host& ParallelRuntime::host(std::size_t spec_index) {
  Shard& sh = shards_[plan_.host_shard[spec_index]];
  assert(sh.host_local[spec_index] != kNpos);
  return sh.net->host(sh.host_local[spec_index]);
}

topo::Link& ParallelRuntime::link(std::size_t spec_index) {
  const std::size_t owner = link_owner_[spec_index];
  assert(owner != kNpos && "cut links have no Link object");
  return shards_[owner].net->link(link_local_[spec_index]);
}

sim::Scheduler& ParallelRuntime::scheduler_of_switch(std::size_t spec_index) {
  return *shards_[plan_.switch_shard[spec_index]].sched;
}

sim::Scheduler& ParallelRuntime::scheduler_of_host(std::size_t spec_index) {
  return *shards_[plan_.host_shard[spec_index]].sched;
}

sim::Scheduler& ParallelRuntime::shard_scheduler(std::size_t shard) {
  return *shards_[shard].sched;
}

sim::Time ParallelRuntime::now() const { return shards_[0].sched->now(); }

std::uint64_t ParallelRuntime::total_executed() const {
  std::uint64_t sum = 0;
  for (const auto& sh : shards_) {
    sum += sh.sched->executed();
  }
  return sum;
}

std::uint64_t ParallelRuntime::cross_shard_messages() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) {
      sum += ch->pushed;
    }
  }
  return sum;
}

std::uint64_t ParallelRuntime::overflow_messages() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) {
      sum += ch->overflowed;
    }
  }
  return sum;
}

std::uint64_t ParallelRuntime::ring_drains() const {
  std::uint64_t sum = 0;
  for (const auto& sh : shards_) {
    sum += sh.ring_drains;
  }
  return sum;
}

std::uint64_t ParallelRuntime::ring_drained() const {
  std::uint64_t sum = 0;
  for (const auto& sh : shards_) {
    sum += sh.ring_drained;
  }
  return sum;
}

void ParallelRuntime::push(std::size_t src, std::size_t dst, Msg&& m) {
  const std::size_t parity = shards_[src].parity;
  Channel& ch = *channel(parity, src, dst);
#ifndef NDEBUG
  // Barrier-ordering invariant: the producer owns this parity's channel for
  // the whole round; the consumer drains it only in the next round, after
  // the barrier. So push never runs concurrently with drain_inbound on the
  // same channel, and `overflow` needs no lock.
  int expected = 0;
  assert((ch.debug_phase.compare_exchange_strong(expected, 1,
                                                 std::memory_order_relaxed) ||
          expected == 1) &&
         "cross-shard push raced a drain: round-parity invariant broken");
#endif
  ++ch.pushed;
  std::int64_t& mn = inflight_[parity][src * plan_.num_shards + dst];
  mn = std::min(mn, m.deliver.ps());
  // Once the ring has filled inside a round it cannot drain until the
  // barrier (the consumer drains only at its next round start), so after
  // the first failed push every subsequent message must ALSO take the
  // overflow path or FIFO order would break when the drain replays
  // ring-then-overflow.
  if (!ch.overflow.empty() || !ch.ring.try_push(std::move(m))) {
    ch.overflow.push_back(std::move(m));
    ++ch.overflowed;
  }
#ifndef NDEBUG
  ch.debug_phase.store(0, std::memory_order_relaxed);
#endif
}

void ParallelRuntime::drain_inbound(std::size_t shard, std::size_t parity) {
  // Fixed source-shard order + per-ring FIFO makes the injection sequence —
  // and therefore the destination scheduler's tie-breaking ids — a pure
  // function of the plan, independent of thread timing. Batching changes
  // only the transport granularity: messages are staged in FIFO order and
  // inject_batch mints sequence numbers in array order, so the resulting
  // (when, seq) keys are identical to a per-message inject loop.
  Shard& sh = shards_[shard];
  const std::size_t n = plan_.num_shards;
  auto stage = [&sh](Msg&& m) {
    assert(m.deliver >= sh.sched->now());
    if (m.to_host) {
      topo::Host* h = &sh.net->host(m.local_index);
      sh.inject_burst.push_back(sim::Scheduler::BatchItem{
          m.deliver, [h, pkt = std::move(m.pkt)]() mutable {
            h->receive(std::move(pkt));
          }});
    } else {
      core::EventSwitch* s = &sh.net->sw(m.local_index);
      const std::uint16_t port = m.port;
      sh.inject_burst.push_back(sim::Scheduler::BatchItem{
          m.deliver, [s, port, pkt = std::move(m.pkt)]() mutable {
            s->receive(port, std::move(pkt));
          }});
    }
  };
  for (std::size_t src = 0; src < n; ++src) {
    Channel* ch = channel(parity, src, shard);
    if (!ch) {
      continue;
    }
#ifndef NDEBUG
    int expected = 0;
    assert(ch->debug_phase.compare_exchange_strong(
               expected, 2, std::memory_order_relaxed) &&
           "cross-shard drain raced a push: round-parity invariant broken");
#endif
    for (;;) {
      const std::size_t got =
          ch->ring.pop_burst(sh.drain_burst.data(), sh.drain_burst.size());
      if (got == 0) {
        break;
      }
      ++sh.ring_drains;
      sh.ring_drained += got;
      sh.inject_burst.clear();
      for (std::size_t i = 0; i < got; ++i) {
        stage(std::move(sh.drain_burst[i]));
      }
      sh.sched->inject_batch(sh.inject_burst.data(), sh.inject_burst.size());
    }
    // Overflow replays *after* the ring so the producer-side FIFO order
    // (ring first, then overflow once the ring filled) is preserved. The
    // unlocked read/clear is safe: this channel's producer pushed it one
    // round ago and is phase-separated from us by the round barrier.
    if (!ch->overflow.empty()) {
      sh.inject_burst.clear();
      for (auto& om : ch->overflow) {
        stage(std::move(om));
      }
      ch->overflow.clear();
      sh.sched->inject_batch(sh.inject_burst.data(), sh.inject_burst.size());
    }
#ifndef NDEBUG
    ch->debug_phase.store(0, std::memory_order_relaxed);
#endif
  }
}

void ParallelRuntime::compute_activity_bounds(std::size_t snap,
                                              std::int64_t* e) const {
  // Least fixpoint of
  //   E_j = min(N_j, min_k(min(E_k + L(k, j), M(k, j))))
  // where N is the published next-event time, M the published in-flight
  // minimum and L the pair lookahead. Seed with min(N, M) — the in-flight
  // terms do not depend on E — then relax the E_k + L edges to a fixpoint;
  // shortest constraint paths have < n edges, so n-1 sweeps suffice.
  const std::size_t n = plan_.num_shards;
  const std::vector<ClockSnap>& clk = clock_[snap];
  const std::vector<std::int64_t>& infl = inflight_[snap];
  for (std::size_t j = 0; j < n; ++j) {
    std::int64_t v = clk[j].next_ps;
    for (std::size_t k = 0; k < n; ++k) {
      v = std::min(v, infl[k * n + j]);
    }
    e[j] = v;
  }
  for (std::size_t sweep = 1; sweep < n; ++sweep) {
    bool changed = false;
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t v = e[j];
      for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t l = pair_lookahead_ps_[k * n + j];
        if (l != kInfinity && e[k] != kInfinity) {
          v = std::min(v, saturating_add(e[k], l));
        }
      }
      if (v < e[j]) {
        e[j] = v;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
}

bool ParallelRuntime::run_round(std::size_t worker, std::uint64_t q,
                                sim::Time deadline, std::int64_t* e) {
  const std::size_t n = plan_.num_shards;
  const std::size_t parity = q & 1;
  const std::size_t snap = (q + 1) & 1;  // previous round's publications
  compute_activity_bounds(snap, e);

  const std::size_t first = worker * shards_per_worker_;
  const std::size_t last = std::min(n, first + shards_per_worker_);
  for (std::size_t i = first; i < last; ++i) {
    Shard& sh = shards_[i];
    sh.parity = parity;
    // Reset this shard's outbound in-flight row for the new parity before
    // any push can happen.
    for (std::size_t dst = 0; dst < n; ++dst) {
      inflight_[parity][i * n + dst] = kInfinity;
    }
    // Deliveries pushed during the previous round enter the queue before
    // the window runs — they may fall inside it.
    drain_inbound(i, snap);

    // wend_i = min(deadline, min_j(E_j + L(j, i)) - 1 ps): nothing another
    // shard does from here on can affect shard i at or before wend_i.
    std::int64_t wend_ps = kInfinity;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t l = pair_lookahead_ps_[j * n + i];
      if (l != kInfinity && e[j] != kInfinity) {
        wend_ps = std::min(wend_ps, saturating_add(e[j], l));
      }
    }
    sim::Time wend = deadline;
    if (wend_ps != kInfinity && sim::Time::picos(wend_ps - 1) < deadline) {
      wend = sim::Time::picos(wend_ps - 1);
    }
    if (wend > sh.sched->now()) {
      sh.sched->run_until(wend);
    }
    const auto next = sh.sched->next_event_time();
    clock_[parity][i] =
        ClockSnap{sh.sched->now().ps(), next ? next->ps() : kInfinity};
  }
  if (worker == 0) {
    ++windows_;
  }
  if (round_barrier_) {
    round_barrier_->arrive_and_wait();
  }
  // Everyone reads the same just-published snapshot, so every worker
  // reaches the same verdict — no extra coordination needed.
  for (std::size_t i = 0; i < n; ++i) {
    if (clock_[parity][i].now_ps < deadline.ps()) {
      return false;
    }
  }
  return true;
}

void ParallelRuntime::run_rounds(std::size_t worker, sim::Time deadline) {
  const std::size_t n = plan_.num_shards;
  std::int64_t* e = bound_scratch_[worker].data();
  std::uint64_t q = round_;

  // Job entry: republish next-event times into the snapshot slot the first
  // round will read. The caller may have scheduled (or cancelled) events on
  // any shard since the last run, so the parked snapshot can be stale in
  // either direction. now() is unchanged; in-flight minima persist (rings
  // cannot be written between jobs).
  const std::size_t entry_snap = (q + 1) & 1;
  const std::size_t first = worker * shards_per_worker_;
  const std::size_t last = std::min(n, first + shards_per_worker_);
  for (std::size_t i = first; i < last; ++i) {
    Shard& sh = shards_[i];
    const auto next = sh.sched->next_event_time();
    clock_[entry_snap][i] =
        ClockSnap{sh.sched->now().ps(), next ? next->ps() : kInfinity};
  }
  if (round_barrier_) {
    round_barrier_->arrive_and_wait();
  }

  while (!run_round(worker, q, deadline, e)) {
    ++q;
  }
  ++q;
  if (worker == 0) {
    round_ = q;
  }
  // Publish round_ before any worker can report the job done: the next
  // job's workers read it at entry, and without this barrier a fast worker
  // could finish, let the caller launch the next job, and race worker 0's
  // write above.
  if (round_barrier_) {
    round_barrier_->arrive_and_wait();
  }
}

void ParallelRuntime::pool_main(std::size_t worker) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    sim::Time deadline;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) {
        return;
      }
      seen_epoch = job_epoch_;
      deadline = job_deadline_;
    }
    run_rounds(worker, deadline);
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (--running_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ParallelRuntime::run_until(sim::Time deadline) {
  const sim::Time start = shards_[0].sched->now();
  if (deadline <= start) {
    return;
  }
  if (plan_.num_shards == 1 && options_.inline_single_shard) {
    shards_[0].sched->run_until(deadline);
    ++windows_;  // one round: drained to the deadline in a single window
    return;
  }
  if (pool_size_ == 1) {
    // Fewer cores than shards: multiplex every shard on the caller's
    // thread. Same round loop, no barrier, no futex — the oversubscribed
    // configuration degrades to sequential windowing instead of context-
    // switch thrash.
    run_rounds(0, deadline);
    return;
  }
  std::unique_lock<std::mutex> lock(pool_mu_);
  job_deadline_ = deadline;
  running_ = pool_size_;
  ++job_epoch_;
  pool_cv_.notify_all();
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

}  // namespace edp::runtime
