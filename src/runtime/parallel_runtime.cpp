#include "runtime/parallel_runtime.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <thread>

namespace edp::runtime {

namespace {
constexpr std::size_t kNpos = topo::ShardPlan::npos;
/// Ring messages moved per burst pop (DPDK burst-size ballpark): large
/// enough to amortize the atomic head publish and the inject_batch call,
/// small enough to keep the scratch resident in L1/L2.
constexpr std::size_t kDrainBurst = 256;
}  // namespace

ParallelRuntime::ParallelRuntime(const topo::Spec& spec, topo::ShardPlan plan,
                                 RuntimeOptions options)
    : plan_(std::move(plan)), options_(options) {
  const std::size_t n = plan_.num_shards;
  assert(n >= 1);
  assert(plan_.switch_shard.size() == spec.num_switches());
  assert(plan_.host_shard.size() == spec.num_hosts());

  shards_.resize(n);
  channels_.resize(n * n);
  for (auto& sh : shards_) {
    sh.sched = std::make_unique<sim::Scheduler>();     // hotpath-ok: setup
    sh.net = std::make_unique<topo::Network>(*sh.sched);  // hotpath-ok: setup
    sh.switch_local.assign(spec.num_switches(), kNpos);
    sh.host_local.assign(spec.num_hosts(), kNpos);
    sh.link_local.assign(spec.num_links(), kNpos);
    sh.drain_burst.resize(kDrainBurst);    // hotpath-ok: setup
    sh.inject_burst.reserve(kDrainBurst);  // hotpath-ok: setup
  }

  // Nodes first (links reference them), in spec order so the sequential and
  // sharded builds enumerate identically.
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    const std::size_t s = plan_.switch_shard[i];
    core::EventSwitchConfig cfg = spec.switch_config(i);
    cfg.shard_id = static_cast<std::uint32_t>(s);
    shards_[s].switch_local[i] = shards_[s].net->add_switch(std::move(cfg));
  }
  for (std::size_t i = 0; i < spec.num_hosts(); ++i) {
    const std::size_t s = plan_.host_shard[i];
    shards_[s].host_local[i] = shards_[s].net->add_host(spec.host_config(i));
  }

  // Channels exist for every directed shard pair joined by at least one cut
  // link (both directions: links are full duplex).
  for (std::size_t l : plan_.cut_links) {
    const auto& ls = spec.link_spec(l);
    const std::size_t sa =
        ls.host_side ? plan_.host_shard[ls.a] : plan_.switch_shard[ls.a];
    const std::size_t sb = plan_.switch_shard[ls.b];
    for (auto [src, dst] : {std::pair{sa, sb}, std::pair{sb, sa}}) {
      auto& ch = channels_[src * n + dst];
      if (!ch) {
        ch = std::make_unique<Channel>(options_.ring_capacity);  // hotpath-ok: setup
      }
    }
  }

  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    const std::size_t sa =
        ls.host_side ? plan_.host_shard[ls.a] : plan_.switch_shard[ls.a];
    const std::size_t sb = plan_.switch_shard[ls.b];

    if (sa == sb) {
      Shard& sh = shards_[sa];
      const std::size_t local =
          ls.host_side
              ? sh.net->connect_host(sh.host_local[ls.a],
                                     sh.switch_local[ls.b], ls.pb, ls.config)
              : sh.net->connect_switches(sh.switch_local[ls.a], ls.pa,
                                         sh.switch_local[ls.b], ls.pb,
                                         ls.config);
      sh.link_local[l] = local;
      continue;
    }

    // Cut link: each side transmits into the directed channel toward the
    // peer's shard; deliveries are injected at the window barrier. The
    // producer stamps the absolute arrival time (its now() + link delay).
    const sim::Time delay = ls.config.delay;
    Channel* a_to_b = channels_[sa * n + sb].get();
    Channel* b_to_a = channels_[sb * n + sa].get();
    assert(a_to_b && b_to_a);

    // B side is always a switch.
    core::EventSwitch& swb =
        shards_[sb].net->sw(shards_[sb].switch_local[ls.b]);
    sim::Scheduler* sched_a = shards_[sa].sched.get();
    sim::Scheduler* sched_b = shards_[sb].sched.get();
    const auto b_local = static_cast<std::uint32_t>(shards_[sb].switch_local[ls.b]);
    const std::uint16_t pb = ls.pb;

    if (ls.host_side) {
      topo::Host& ha = shards_[sa].net->host(shards_[sa].host_local[ls.a]);
      const auto a_local =
          static_cast<std::uint32_t>(shards_[sa].host_local[ls.a]);
      ha.connect_tx([this, a_to_b, sched_a, delay, b_local, pb](net::Packet p) {
        push(*a_to_b, Msg{sched_a->now() + delay, /*to_host=*/false, b_local,
                          pb, std::move(p)});
      });
      swb.connect_tx(pb, [this, b_to_a, sched_b, delay, a_local](net::Packet p) {
        push(*b_to_a, Msg{sched_b->now() + delay, /*to_host=*/true, a_local, 0,
                          std::move(p)});
      });
    } else {
      core::EventSwitch& swa =
          shards_[sa].net->sw(shards_[sa].switch_local[ls.a]);
      const auto a_local =
          static_cast<std::uint32_t>(shards_[sa].switch_local[ls.a]);
      const std::uint16_t pa = ls.pa;
      swa.connect_tx(pa, [this, a_to_b, sched_a, delay, b_local, pb](net::Packet p) {
        push(*a_to_b, Msg{sched_a->now() + delay, /*to_host=*/false, b_local,
                          pb, std::move(p)});
      });
      swb.connect_tx(pb, [this, b_to_a, sched_b, delay, a_local, pa](net::Packet p) {
        push(*b_to_a, Msg{sched_b->now() + delay, /*to_host=*/false, a_local,
                          pa, std::move(p)});
      });
    }
  }
}

ParallelRuntime::~ParallelRuntime() = default;

core::EventSwitch& ParallelRuntime::sw(std::size_t spec_index) {
  Shard& sh = shards_[plan_.switch_shard[spec_index]];
  assert(sh.switch_local[spec_index] != kNpos);
  return sh.net->sw(sh.switch_local[spec_index]);
}

topo::Host& ParallelRuntime::host(std::size_t spec_index) {
  Shard& sh = shards_[plan_.host_shard[spec_index]];
  assert(sh.host_local[spec_index] != kNpos);
  return sh.net->host(sh.host_local[spec_index]);
}

topo::Link& ParallelRuntime::link(std::size_t spec_index) {
  for (auto& sh : shards_) {
    if (sh.link_local[spec_index] != kNpos) {
      return sh.net->link(sh.link_local[spec_index]);
    }
  }
  assert(false && "cut links have no Link object");
  return shards_[0].net->link(0);  // unreachable
}

sim::Scheduler& ParallelRuntime::scheduler_of_switch(std::size_t spec_index) {
  return *shards_[plan_.switch_shard[spec_index]].sched;
}

sim::Scheduler& ParallelRuntime::scheduler_of_host(std::size_t spec_index) {
  return *shards_[plan_.host_shard[spec_index]].sched;
}

sim::Scheduler& ParallelRuntime::shard_scheduler(std::size_t shard) {
  return *shards_[shard].sched;
}

sim::Time ParallelRuntime::now() const { return shards_[0].sched->now(); }

std::uint64_t ParallelRuntime::total_executed() const {
  std::uint64_t sum = 0;
  for (const auto& sh : shards_) {
    sum += sh.sched->executed();
  }
  return sum;
}

std::uint64_t ParallelRuntime::cross_shard_messages() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) {
      sum += ch->pushed;
    }
  }
  return sum;
}

std::uint64_t ParallelRuntime::overflow_messages() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) {
      sum += ch->overflowed;
    }
  }
  return sum;
}

std::uint64_t ParallelRuntime::ring_drains() const {
  std::uint64_t sum = 0;
  for (const auto& sh : shards_) {
    sum += sh.ring_drains;
  }
  return sum;
}

std::uint64_t ParallelRuntime::ring_drained() const {
  std::uint64_t sum = 0;
  for (const auto& sh : shards_) {
    sum += sh.ring_drained;
  }
  return sum;
}

void ParallelRuntime::push(Channel& ch, Msg&& m) {
  ++ch.pushed;
  // Once the ring has filled inside a window it cannot drain until the
  // barrier (the consumer is busy running its own window), so after the
  // first failed push every subsequent message must ALSO take the overflow
  // path or FIFO order would break when the drain replays ring-then-overflow.
  if (!ch.overflow.empty() || !ch.ring.try_push(std::move(m))) {
    std::lock_guard<std::mutex> lock(ch.overflow_mu);
    ch.overflow.push_back(std::move(m));
    ++ch.overflowed;
  }
}

void ParallelRuntime::drain_inbound(std::size_t shard) {
  // Fixed source-shard order + per-ring FIFO makes the injection sequence —
  // and therefore the destination scheduler's tie-breaking ids — a pure
  // function of the plan, independent of thread timing. Batching changes
  // only the transport granularity: messages are staged in FIFO order and
  // inject_batch mints sequence numbers in array order, so the resulting
  // (when, seq) keys are identical to a per-message inject loop.
  Shard& sh = shards_[shard];
  const std::size_t n = plan_.num_shards;
  auto stage = [&sh](Msg&& m) {
    assert(m.deliver >= sh.sched->now());
    if (m.to_host) {
      topo::Host* h = &sh.net->host(m.local_index);
      sh.inject_burst.push_back(sim::Scheduler::BatchItem{
          m.deliver, [h, pkt = std::move(m.pkt)]() mutable {
            h->receive(std::move(pkt));
          }});
    } else {
      core::EventSwitch* s = &sh.net->sw(m.local_index);
      const std::uint16_t port = m.port;
      sh.inject_burst.push_back(sim::Scheduler::BatchItem{
          m.deliver, [s, port, pkt = std::move(m.pkt)]() mutable {
            s->receive(port, std::move(pkt));
          }});
    }
  };
  for (std::size_t src = 0; src < n; ++src) {
    Channel* ch = channels_[src * n + shard].get();
    if (!ch) {
      continue;
    }
    for (;;) {
      const std::size_t got =
          ch->ring.pop_burst(sh.drain_burst.data(), sh.drain_burst.size());
      if (got == 0) {
        break;
      }
      ++sh.ring_drains;
      sh.ring_drained += got;
      sh.inject_burst.clear();
      for (std::size_t i = 0; i < got; ++i) {
        stage(std::move(sh.drain_burst[i]));
      }
      sh.sched->inject_batch(sh.inject_burst.data(), sh.inject_burst.size());
    }
    if (!ch->overflow.empty()) {
      // Overflow replays *after* the ring so the producer-side FIFO order
      // (ring first, then overflow once the ring filled) is preserved.
      std::lock_guard<std::mutex> lock(ch->overflow_mu);
      sh.inject_burst.clear();
      for (auto& om : ch->overflow) {
        stage(std::move(om));
      }
      ch->overflow.clear();
      sh.sched->inject_batch(sh.inject_burst.data(), sh.inject_burst.size());
    }
  }
}

void ParallelRuntime::worker_loop(std::size_t shard, sim::Time start,
                                  sim::Time deadline, sim::Time window,
                                  std::barrier<>& bar) {
  sim::Scheduler& sched = *shards_[shard].sched;
  sim::Time t = start;
  while (t < deadline) {
    const sim::Time wend = std::min(t + window, deadline);
    sched.run_until(wend);
    bar.arrive_and_wait();  // every shard finished (t, wend]; rings quiescent
    drain_inbound(shard);
    bar.arrive_and_wait();  // every drain done; safe to produce again
    if (shard == 0) {
      ++windows_;
    }
    t = wend;
  }
}

void ParallelRuntime::run_until(sim::Time deadline) {
  const sim::Time start = shards_[0].sched->now();
  if (deadline <= start) {
    return;
  }
  if (plan_.num_shards == 1 && options_.inline_single_shard) {
    shards_[0].sched->run_until(deadline);
    ++windows_;
    return;
  }
  const sim::Time window =
      plan_.lookahead ? *plan_.lookahead : (deadline - start);
  std::barrier<> bar(static_cast<std::ptrdiff_t>(plan_.num_shards));
  std::vector<std::thread> workers;
  workers.reserve(plan_.num_shards);
  for (std::size_t s = 0; s < plan_.num_shards; ++s) {
    workers.emplace_back(
        [this, s, start, deadline, window, &bar] {
          worker_loop(s, start, deadline, window, bar);
        });
  }
  for (auto& w : workers) {
    w.join();
  }
}

}  // namespace edp::runtime
