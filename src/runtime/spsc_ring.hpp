// edp::runtime — bounded lock-free single-producer/single-consumer ring.
//
// The cross-shard transport of the parallel runtime. One ring carries
// messages in exactly one direction between one (producer shard, consumer
// shard) pair, which is what makes the Lamport construction sufficient: the
// producer only writes `tail_`, the consumer only writes `head_`, and each
// side caches the other's index to avoid touching the shared cache line on
// every operation (the DPDK/ndn-dpdk idiom).
//
// FIFO order is the correctness property the runtime's determinism rests
// on: messages pushed in simulated-time order by the producing shard are
// popped in the same order at the window barrier.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace edp::runtime {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; the ring holds up to
  /// `capacity()` elements (one slot is NOT sacrificed: head/tail are
  /// monotonically increasing counters, not wrapped indices).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) {
        return false;
      }
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, DPDK-style burst pop: move up to `max` elements into
  /// `out` in FIFO order with one head publish for the whole burst (one
  /// release store and at most one tail refresh, instead of one per
  /// element). Returns the number popped; 0 when the ring is empty.
  std::size_t pop_burst(T* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return 0;
      }
    }
    const std::size_t n = std::min(tail_cache_ - head, max);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy (exact when the other side is quiescent, which
  /// is the only time the runtime reads it).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Producer-owned line: tail index + cached view of head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;

  // Consumer-owned line: head index + cached view of tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

}  // namespace edp::runtime
