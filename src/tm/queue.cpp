#include "tm/queue.hpp"

#include <algorithm>

namespace edp::tm_ {

bool PacketQueue::push(QueuedPacket qp) {
  const std::size_t sz = qp.packet.size();
  if (would_overflow(sz)) {
    ++stats_.dropped;
    return false;
  }
  bytes_ += sz;
  do_push(std::move(qp));
  ++stats_.enqueued;
  stats_.max_depth_bytes = std::max(stats_.max_depth_bytes, bytes_);
  stats_.max_depth_packets = std::max(stats_.max_depth_packets, packets());
  return true;
}

std::optional<QueuedPacket> PacketQueue::pop() {
  auto qp = do_pop();
  if (qp) {
    bytes_ -= qp->packet.size();
    ++stats_.dequeued;
  }
  return qp;
}

std::optional<QueuedPacket> FifoQueue::do_pop() {
  if (q_.empty()) {
    return std::nullopt;
  }
  QueuedPacket qp = std::move(q_.front());
  q_.pop_front();
  return qp;
}

}  // namespace edp::tm_
