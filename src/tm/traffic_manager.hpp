// edp::tm_ — the traffic manager.
//
// Sits between ingress and egress pipelines (paper Figure 2): owns the
// per-port queues and the shared buffer, and is the source of the buffer
// events — every admit fires Enqueue, every service fires Dequeue, every
// rejection fires Overflow (drop), and serving an empty port fires
// Underflow. Event payloads carry the metadata the ingress program
// attached (enq_meta / deq_meta), exactly as in the paper's architecture
// where "the traffic manager extracts some metadata from the packet and
// uses it to fire an enqueue event".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "tm/buffer_pool.hpp"
#include "tm/pifo.hpp"
#include "tm/queue.hpp"
#include "tm/scheduler.hpp"

namespace edp::tm_ {

/// Why a packet was not admitted.
enum class DropReason : std::uint8_t {
  kQueueLimit,   ///< per-queue packet/byte cap
  kBufferPool,   ///< shared buffer exhausted
  kAdmission,    ///< rejected by the admission hook (AQM / policer)
};

/// Fired on every successful enqueue.
struct EnqueueRecord {
  std::uint16_t port = 0;
  std::uint8_t qid = 0;
  std::uint32_t pkt_len = 0;
  EventMetaWords enq_meta{};
  std::size_t depth_bytes = 0;    ///< queue depth after the enqueue
  std::size_t depth_packets = 0;
  sim::Time when = sim::Time::zero();
};

/// Fired on every dequeue.
struct DequeueRecord {
  std::uint16_t port = 0;
  std::uint8_t qid = 0;
  std::uint32_t pkt_len = 0;
  EventMetaWords deq_meta{};
  sim::Time sojourn = sim::Time::zero();  ///< queueing delay
  std::size_t depth_bytes = 0;            ///< queue depth after the dequeue
  std::size_t depth_packets = 0;
  sim::Time when = sim::Time::zero();
};

/// Fired when a packet is dropped instead of enqueued (buffer overflow).
struct DropRecord {
  std::uint16_t port = 0;
  std::uint8_t qid = 0;
  std::uint32_t pkt_len = 0;
  EventMetaWords enq_meta{};
  DropReason reason = DropReason::kQueueLimit;
  sim::Time when = sim::Time::zero();
};

/// Fired when a port is asked to dequeue but all its queues are empty.
struct UnderflowRecord {
  std::uint16_t port = 0;
  sim::Time when = sim::Time::zero();
};

/// Traffic manager configuration.
struct TmConfig {
  std::uint16_t num_ports = 4;
  std::uint8_t queues_per_port = 1;
  bool use_pifo = false;  ///< PIFO queues instead of FIFOs
  QueueLimits queue_limits;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  std::vector<std::uint32_t> dwrr_weights;  ///< per-qid weights for DWRR
  BufferPool::Config buffer;
};

class TrafficManager {
 public:
  explicit TrafficManager(TmConfig config);

  // ---- data path ----------------------------------------------------------

  /// Admit `qp` to (port, qid). `enq_meta` is delivered with the enqueue
  /// (or overflow) event. Returns true if admitted.
  ///
  /// The optional admission hook runs first; returning false there drops
  /// the packet with DropReason::kAdmission (how ingress-side AQM rejects).
  bool enqueue(std::uint16_t port, std::uint8_t qid, QueuedPacket qp,
               const EventMetaWords& enq_meta, sim::Time now);

  /// Serve one packet from `port` per its scheduler. Fires Dequeue, or
  /// Underflow if every queue at the port is empty.
  std::optional<QueuedPacket> dequeue(std::uint16_t port, sim::Time now);

  /// Size of the packet `dequeue(port)` would return (0 if none).
  std::size_t next_packet_size(std::uint16_t port) const;

  bool port_empty(std::uint16_t port) const;

  // ---- occupancy ------------------------------------------------------------

  std::size_t queue_bytes(std::uint16_t port, std::uint8_t qid) const;
  std::size_t queue_packets(std::uint16_t port, std::uint8_t qid) const;
  std::size_t port_bytes(std::uint16_t port) const;
  std::size_t total_bytes() const { return pool_.used_total(); }
  const QueueStats& queue_stats(std::uint16_t port, std::uint8_t qid) const;
  const TmConfig& config() const { return config_; }

  // ---- event hooks ----------------------------------------------------------

  std::function<void(const EnqueueRecord&)> on_enqueue;
  std::function<void(const DequeueRecord&)> on_dequeue;
  std::function<void(const DropRecord&)> on_drop;
  std::function<void(const UnderflowRecord&)> on_underflow;

  /// AQM/policer admission check: called with the candidate record before
  /// commit; return false to drop. (Used by baseline AQMs that live in the
  /// TM; the event-driven AQMs of this repo decide in the ingress program.)
  std::function<bool(const EnqueueRecord&, const QueuedPacket&)> admit;

  // ---- aggregate drop stats ---------------------------------------------------

  std::uint64_t drops_total() const { return drops_total_; }

 private:
  struct Port {
    std::vector<std::unique_ptr<PacketQueue>> queues;
    std::unique_ptr<PortScheduler> scheduler;
  };

  std::size_t flat_index(std::uint16_t port, std::uint8_t qid) const {
    return static_cast<std::size_t>(port) * config_.queues_per_port + qid;
  }

  TmConfig config_;
  std::vector<Port> ports_;
  BufferPool pool_;
  std::uint64_t drops_total_ = 0;
};

}  // namespace edp::tm_
