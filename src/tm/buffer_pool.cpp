#include "tm/buffer_pool.hpp"

#include <cassert>

namespace edp::tm_ {

BufferPool::BufferPool(Config config, std::size_t num_queues)
    : config_(config), used_(num_queues, 0) {}

std::size_t BufferPool::free_shared() const {
  const std::size_t reserved_total =
      config_.reserved_per_queue * used_.size();
  const std::size_t shared_capacity =
      config_.total_bytes > reserved_total
          ? config_.total_bytes - reserved_total
          : 0;
  // Shared usage = sum of per-queue usage above each queue's reservation.
  std::size_t shared_used = 0;
  for (const std::size_t u : used_) {
    if (u > config_.reserved_per_queue) {
      shared_used += u - config_.reserved_per_queue;
    }
  }
  return shared_capacity > shared_used ? shared_capacity - shared_used : 0;
}

bool BufferPool::can_admit(std::size_t q, std::size_t bytes) const {
  assert(q < used_.size());
  if (used_total_ + bytes > config_.total_bytes) {
    return false;
  }
  const std::size_t after = used_[q] + bytes;
  if (after <= config_.reserved_per_queue) {
    return true;
  }
  // Dynamic threshold: the queue's share above its reservation must stay
  // below alpha * free shared space (computed before this admission).
  const double limit =
      config_.alpha * static_cast<double>(free_shared());
  return static_cast<double>(after - config_.reserved_per_queue) <= limit;
}

void BufferPool::on_enqueue(std::size_t q, std::size_t bytes) {
  assert(q < used_.size());
  used_[q] += bytes;
  used_total_ += bytes;
}

void BufferPool::on_dequeue(std::size_t q, std::size_t bytes) {
  assert(q < used_.size());
  assert(used_[q] >= bytes && used_total_ >= bytes);
  used_[q] -= bytes;
  used_total_ -= bytes;
}

}  // namespace edp::tm_
