// edp::tm_ — Push-In-First-Out queue.
//
// The PIFO (Sivaraman et al., SIGCOMM'16 — reference [27] of the paper) is
// the programmable-scheduling building block: packets are pushed with a
// program-computed rank and always dequeued in rank order. Combined with
// event-driven rank computation this yields a fully programmable packet
// scheduler (paper §3, Traffic Management).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "tm/queue.hpp"

namespace edp::tm_ {

/// Rank-ordered queue: pop returns the smallest rank; ties break FIFO
/// (stable), matching the hardware PIFO definition.
class PifoQueue final : public PacketQueue {
 public:
  explicit PifoQueue(QueueLimits limits) : PacketQueue(limits) {}

  std::size_t front_size() const override {
    return heap_.empty() ? 0 : heap_.top().qp.packet.size();
  }
  std::size_t packets() const override { return heap_.size(); }

  /// Smallest rank currently queued (0 if empty) — used by schedulers.
  std::uint64_t front_rank() const {
    return heap_.empty() ? 0 : heap_.top().qp.rank;
  }

 protected:
  void do_push(QueuedPacket qp) override {
    heap_.push(Item{std::move(qp), seq_++});
  }

  std::optional<QueuedPacket> do_pop() override {
    if (heap_.empty()) {
      return std::nullopt;
    }
    // priority_queue::top is const; move out via const_cast before pop
    // (standard idiom; the item is popped immediately).
    QueuedPacket qp = std::move(const_cast<Item&>(heap_.top()).qp);
    heap_.pop();
    return qp;
  }

 private:
  struct Item {
    QueuedPacket qp;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.qp.rank != b.qp.rank) {
        return a.qp.rank > b.qp.rank;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace edp::tm_
