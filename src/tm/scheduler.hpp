// edp::tm_ — port schedulers: pick which queue a port serves next.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tm/queue.hpp"

namespace edp::tm_ {

enum class SchedulerKind : std::uint8_t {
  kRoundRobin,      ///< cycle over non-empty queues, one packet each
  kStrictPriority,  ///< lowest queue id first (qid 0 = highest priority)
  kDwrr,            ///< deficit weighted round robin over bytes
};

/// Queue-selection policy for one output port.
class PortScheduler {
 public:
  virtual ~PortScheduler() = default;

  /// Index of the queue to serve next, or -1 if all are empty.
  virtual int select(
      const std::vector<std::unique_ptr<PacketQueue>>& queues) = 0;

  /// Feedback after a dequeue (needed by DWRR's deficit accounting).
  virtual void on_dequeued(int /*queue*/, std::size_t /*bytes*/) {}

  /// Factory; `weights` is used by DWRR (default weight 1 per queue).
  static std::unique_ptr<PortScheduler> make(
      SchedulerKind kind, std::size_t num_queues,
      const std::vector<std::uint32_t>& weights = {});
};

/// Round-robin: remembers the last served index.
class RoundRobinScheduler final : public PortScheduler {
 public:
  int select(const std::vector<std::unique_ptr<PacketQueue>>& queues) override;

 private:
  std::size_t next_ = 0;
};

/// Strict priority: queue 0 is served whenever non-empty, then 1, ...
class StrictPriorityScheduler final : public PortScheduler {
 public:
  int select(const std::vector<std::unique_ptr<PacketQueue>>& queues) override;
};

/// Deficit Weighted Round Robin (Shreedhar & Varghese). Each queue earns
/// `quantum * weight` bytes of credit per round; a queue is served while
/// its deficit covers its head packet.
class DwrrScheduler final : public PortScheduler {
 public:
  DwrrScheduler(std::size_t num_queues, std::vector<std::uint32_t> weights,
                std::size_t quantum = 1500);

  int select(const std::vector<std::unique_ptr<PacketQueue>>& queues) override;
  void on_dequeued(int queue, std::size_t bytes) override;

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::int64_t> deficit_;
  std::size_t quantum_;
  std::size_t current_ = 0;
  /// True once the current queue received its quantum for this visit;
  /// cleared when the round-robin pointer moves on. Prevents a backlogged
  /// queue from collecting a fresh quantum on every select() call.
  bool quantum_granted_ = false;
};

}  // namespace edp::tm_
