#include "tm/scheduler.hpp"

namespace edp::tm_ {

std::unique_ptr<PortScheduler> PortScheduler::make(
    SchedulerKind kind, std::size_t num_queues,
    const std::vector<std::uint32_t>& weights) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kStrictPriority:
      return std::make_unique<StrictPriorityScheduler>();
    case SchedulerKind::kDwrr: {
      std::vector<std::uint32_t> w = weights;
      w.resize(num_queues, 1);
      return std::make_unique<DwrrScheduler>(num_queues, std::move(w));
    }
  }
  return nullptr;
}

int RoundRobinScheduler::select(
    const std::vector<std::unique_ptr<PacketQueue>>& queues) {
  const std::size_t n = queues.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t q = (next_ + i) % n;
    if (!queues[q]->empty()) {
      next_ = (q + 1) % n;
      return static_cast<int>(q);
    }
  }
  return -1;
}

int StrictPriorityScheduler::select(
    const std::vector<std::unique_ptr<PacketQueue>>& queues) {
  for (std::size_t q = 0; q < queues.size(); ++q) {
    if (!queues[q]->empty()) {
      return static_cast<int>(q);
    }
  }
  return -1;
}

DwrrScheduler::DwrrScheduler(std::size_t num_queues,
                             std::vector<std::uint32_t> weights,
                             std::size_t quantum)
    : weights_(std::move(weights)),
      deficit_(num_queues, 0),
      quantum_(quantum) {
  weights_.resize(num_queues, 1);
}

int DwrrScheduler::select(
    const std::vector<std::unique_ptr<PacketQueue>>& queues) {
  const std::size_t n = queues.size();
  if (n == 0) {
    return -1;
  }
  // Up to 2n steps: each queue receives at most one quantum per visit, so a
  // non-empty queue is guaranteed to become serviceable within two laps
  // (its packet size is bounded by the queue byte limit in practice).
  for (std::size_t step = 0; step < 2 * n; ++step) {
    const std::size_t q = current_;
    if (!queues[q]->empty()) {
      if (!quantum_granted_) {
        deficit_[q] += static_cast<std::int64_t>(quantum_ * weights_[q]);
        quantum_granted_ = true;
      }
      if (deficit_[q] >= static_cast<std::int64_t>(queues[q]->front_size())) {
        // Serve from this queue; the visit continues (no new quantum) until
        // the deficit no longer covers the head packet.
        return static_cast<int>(q);
      }
    } else {
      deficit_[q] = 0;  // idle queues do not accumulate credit
    }
    quantum_granted_ = false;
    current_ = (current_ + 1) % n;
  }
  return -1;
}

void DwrrScheduler::on_dequeued(int queue, std::size_t bytes) {
  deficit_[static_cast<std::size_t>(queue)] -=
      static_cast<std::int64_t>(bytes);
}

}  // namespace edp::tm_
