#include "tm/traffic_manager.hpp"

#include <cassert>

namespace edp::tm_ {

TrafficManager::TrafficManager(TmConfig config)
    : config_(std::move(config)),
      pool_(config_.buffer,
            static_cast<std::size_t>(config_.num_ports) *
                config_.queues_per_port) {
  ports_.resize(config_.num_ports);
  for (auto& port : ports_) {
    port.queues.reserve(config_.queues_per_port);
    for (std::uint8_t q = 0; q < config_.queues_per_port; ++q) {
      if (config_.use_pifo) {
        port.queues.push_back(
            std::make_unique<PifoQueue>(config_.queue_limits));
      } else {
        port.queues.push_back(
            std::make_unique<FifoQueue>(config_.queue_limits));
      }
    }
    port.scheduler = PortScheduler::make(
        config_.scheduler, config_.queues_per_port, config_.dwrr_weights);
  }
}

bool TrafficManager::enqueue(std::uint16_t port, std::uint8_t qid,
                             QueuedPacket qp, const EventMetaWords& enq_meta,
                             sim::Time now) {
  assert(port < ports_.size() && qid < config_.queues_per_port);
  PacketQueue& q = *ports_[port].queues[qid];
  const std::uint32_t len = static_cast<std::uint32_t>(qp.packet.size());

  const auto drop = [&](DropReason reason) {
    ++drops_total_;
    if (on_drop) {
      on_drop(DropRecord{port, qid, len, enq_meta, reason, now});
    }
    return false;
  };

  EnqueueRecord rec{port,
                    qid,
                    len,
                    enq_meta,
                    q.bytes() + len,
                    q.packets() + 1,
                    now};
  if (admit && !admit(rec, qp)) {
    return drop(DropReason::kAdmission);
  }
  if (q.would_overflow(len)) {
    return drop(DropReason::kQueueLimit);
  }
  const std::size_t flat = flat_index(port, qid);
  if (!pool_.can_admit(flat, len)) {
    return drop(DropReason::kBufferPool);
  }

  qp.enqueue_time = now;
  const bool ok = q.push(std::move(qp));
  assert(ok && "would_overflow check should have caught this");
  (void)ok;
  pool_.on_enqueue(flat, len);
  if (on_enqueue) {
    on_enqueue(rec);
  }
  return true;
}

std::optional<QueuedPacket> TrafficManager::dequeue(std::uint16_t port,
                                                    sim::Time now) {
  assert(port < ports_.size());
  Port& p = ports_[port];
  const int qi = p.scheduler->select(p.queues);
  if (qi < 0) {
    if (on_underflow) {
      on_underflow(UnderflowRecord{port, now});
    }
    return std::nullopt;
  }
  const auto qid = static_cast<std::uint8_t>(qi);
  auto qp = p.queues[static_cast<std::size_t>(qi)]->pop();
  assert(qp && "scheduler selected an empty queue");
  const std::uint32_t len = static_cast<std::uint32_t>(qp->packet.size());
  p.scheduler->on_dequeued(qi, len);
  pool_.on_dequeue(flat_index(port, qid), len);
  if (on_dequeue) {
    const PacketQueue& q = *p.queues[static_cast<std::size_t>(qi)];
    on_dequeue(DequeueRecord{port, qid, len, qp->deq_meta,
                             now - qp->enqueue_time, q.bytes(), q.packets(),
                             now});
  }
  return qp;
}

std::size_t TrafficManager::next_packet_size(std::uint16_t port) const {
  assert(port < ports_.size());
  const Port& p = ports_[port];
  // Non-mutating preview: ask the scheduler which queue it would pick is
  // not possible without state changes (DWRR), so preview the first
  // non-empty queue's head for FIFO-ish cases and the true scheduler pick
  // for single-queue ports. For multi-queue ports this is an upper-bound
  // heuristic used only to pace the transmit loop; the actual dequeue
  // decides the real packet.
  for (const auto& q : p.queues) {
    if (!q->empty()) {
      return q->front_size();
    }
  }
  return 0;
}

bool TrafficManager::port_empty(std::uint16_t port) const {
  assert(port < ports_.size());
  for (const auto& q : ports_[port].queues) {
    if (!q->empty()) {
      return false;
    }
  }
  return true;
}

std::size_t TrafficManager::queue_bytes(std::uint16_t port,
                                        std::uint8_t qid) const {
  return ports_[port].queues[qid]->bytes();
}

std::size_t TrafficManager::queue_packets(std::uint16_t port,
                                          std::uint8_t qid) const {
  return ports_[port].queues[qid]->packets();
}

std::size_t TrafficManager::port_bytes(std::uint16_t port) const {
  std::size_t total = 0;
  for (const auto& q : ports_[port].queues) {
    total += q->bytes();
  }
  return total;
}

const QueueStats& TrafficManager::queue_stats(std::uint16_t port,
                                              std::uint8_t qid) const {
  return ports_[port].queues[qid]->stats();
}

}  // namespace edp::tm_
