// PifoQueue is header-only; this TU anchors the module in the build.
#include "tm/pifo.hpp"

namespace edp::tm_ {
// (intentionally empty)
}  // namespace edp::tm_
