// edp::tm_ — shared buffer accounting.
//
// Switch buffers are a shared SRAM pool carved among queues. We model the
// common dynamic-threshold scheme: each queue owns a small reserved
// allotment, and may additionally use up to `alpha *` the remaining free
// shared space — so a single congested queue can absorb bursts without
// starving the others.
#pragma once

#include <cstdint>
#include <vector>

namespace edp::tm_ {

class BufferPool {
 public:
  struct Config {
    std::size_t total_bytes = 2 * 1024 * 1024;
    std::size_t reserved_per_queue = 8 * 1024;
    double alpha = 1.0;  ///< dynamic threshold factor
  };

  BufferPool(Config config, std::size_t num_queues);

  /// Can queue `q` admit `bytes` more? (no side effects)
  bool can_admit(std::size_t q, std::size_t bytes) const;

  /// Commit an admission decision.
  void on_enqueue(std::size_t q, std::size_t bytes);
  void on_dequeue(std::size_t q, std::size_t bytes);

  std::size_t used_total() const { return used_total_; }
  std::size_t used_by(std::size_t q) const { return used_[q]; }
  std::size_t free_shared() const;
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<std::size_t> used_;
  std::size_t used_total_ = 0;
};

}  // namespace edp::tm_
