// edp::tm_ — packet queues.
//
// Queues are where the paper's enqueue/dequeue/overflow/underflow events
// originate. A queued packet carries the dequeue-event metadata that the
// ingress program attached (the paper's `deq_meta`), so the traffic manager
// can fire a dequeue event with program-defined content without re-parsing.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "net/packet.hpp"
#include "sim/ring_queue.hpp"
#include "sim/time.hpp"

namespace edp::tm_ {

/// Event metadata words a program attaches to a packet for the enqueue /
/// dequeue handlers (the paper's enq_meta / deq_meta structs).
using EventMetaWords = std::array<std::uint64_t, 4>;

/// A packet resident in a queue.
struct QueuedPacket {
  net::Packet packet;
  sim::Time enqueue_time = sim::Time::zero();
  EventMetaWords deq_meta{};  ///< delivered with the dequeue event
  std::uint64_t rank = 0;     ///< PIFO scheduling rank (ignored by FIFOs)
};

/// Admission/occupancy limits for one queue.
struct QueueLimits {
  std::size_t max_packets = 1024;
  std::size_t max_bytes = 512 * 1024;
};

/// Running statistics for one queue.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;  ///< rejected at admission (tail drop)
  std::size_t max_depth_bytes = 0;
  std::size_t max_depth_packets = 0;
};

/// Abstract packet queue. Implementations: FifoQueue, PifoQueue.
class PacketQueue {
 public:
  explicit PacketQueue(QueueLimits limits) : limits_(limits) {}
  virtual ~PacketQueue() = default;

  PacketQueue(const PacketQueue&) = delete;
  PacketQueue& operator=(const PacketQueue&) = delete;

  /// True if `bytes` more would exceed either limit.
  bool would_overflow(std::size_t bytes) const {
    return packets() + 1 > limits_.max_packets ||
           this->bytes() + bytes > limits_.max_bytes;
  }

  /// Admit a packet; returns false (tail drop) on overflow.
  bool push(QueuedPacket qp);

  /// Remove the next packet per the queue discipline.
  std::optional<QueuedPacket> pop();

  /// Size of the packet `pop()` would return (0 if empty) — used by the
  /// port transmit loop to compute serialization time without popping.
  virtual std::size_t front_size() const = 0;

  virtual std::size_t packets() const = 0;
  std::size_t bytes() const { return bytes_; }
  bool empty() const { return packets() == 0; }

  const QueueLimits& limits() const { return limits_; }
  const QueueStats& stats() const { return stats_; }

 protected:
  virtual void do_push(QueuedPacket qp) = 0;
  virtual std::optional<QueuedPacket> do_pop() = 0;

  QueueLimits limits_;
  QueueStats stats_;
  std::size_t bytes_ = 0;
};

/// Plain FIFO queue.
class FifoQueue final : public PacketQueue {
 public:
  explicit FifoQueue(QueueLimits limits) : PacketQueue(limits) {}

  std::size_t front_size() const override {
    return q_.empty() ? 0 : q_.front().packet.size();
  }
  std::size_t packets() const override { return q_.size(); }

 protected:
  void do_push(QueuedPacket qp) override { q_.push_back(std::move(qp)); }
  std::optional<QueuedPacket> do_pop() override;

 private:
  // Ring, not deque: occupancy oscillating around a working level costs a
  // deque one node allocation per few packets; the ring's slots are stable.
  sim::RingQueue<QueuedPacket> q_;
};

}  // namespace edp::tm_
