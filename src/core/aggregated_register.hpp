// edp::core — single-ported state with aggregation registers (paper §4,
// Figure 3).
//
// High line-rate devices cannot afford multi-ported memory, so the logical
// event pipelines are merged into one physical pipeline and state must be
// maintained with *single-ported* register arrays:
//
//   * Packet-event read-modify-writes always operate on the MAIN register
//     (the algorithmic state, e.g. queue size).
//   * Enqueue / dequeue event updates are AGGREGATED into two side register
//     arrays (one RMW on the side array coalesces with any pending delta
//     for the same index).
//   * During idle clock cycles — when the workload has larger-than-minimum
//     packets or the pipeline runs faster than line rate — the aggregated
//     deltas are applied to the main register, one index per spare
//     main-port cycle.
//
// The consequence the paper analyzes is *bounded staleness*: the main
// register may lag the true value while deltas are pending, and the lag is
// bounded iff drain bandwidth exceeds the event update rate. This class
// tracks backlog and staleness (in cycles) precisely so the F3/A1 benches
// can reproduce that analysis.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/register_probe.hpp"
#include "pisa/register.hpp"

namespace edp::core {

/// Which aggregation array the idle-cycle drain favors (paper §4 future
/// work: "how memory accesses are scheduled, depending on which events are
/// the most important and urgent"). kRoundRobin alternates fairly;
/// kEnqueueFirst / kDequeueFirst give one array strict priority (e.g. a
/// program that must never over-estimate occupancy drains dequeues first).
enum class DrainPolicy : std::uint8_t {
  kRoundRobin,
  kEnqueueFirst,
  kDequeueFirst,
};

class AggregatedRegister {
 public:
  AggregatedRegister(std::string name, std::size_t size,
                     DrainPolicy policy = DrainPolicy::kRoundRobin);

  const std::string& name() const { return name_; }
  std::size_t size() const { return main_.size(); }

  // ---- packet thread (main register, one port per cycle) -------------------

  /// Read the algorithmic state as a packet event sees it (possibly stale).
  std::int64_t packet_read(std::size_t idx, std::uint64_t cycle);

  /// Packet-event RMW on the main register.
  std::int64_t packet_add(std::size_t idx, std::int64_t delta,
                          std::uint64_t cycle);

  // ---- event threads (aggregation arrays, own ports) -----------------------

  /// Enqueue-event update: coalesce `delta` into the enqueue aggregation
  /// array (always succeeds; same-index deltas merge, as in hardware).
  void enqueue_add(std::size_t idx, std::int64_t delta, std::uint64_t cycle);

  /// Dequeue-event update into the dequeue aggregation array.
  void dequeue_add(std::size_t idx, std::int64_t delta, std::uint64_t cycle);

  // ---- idle-cycle drain -----------------------------------------------------

  /// Apply up to `budget` pending aggregated indices to the main register
  /// (each costs one main-register port; the EventSwitch calls this with
  /// the spare bandwidth of the current cycle). Returns entries applied.
  std::size_t drain(std::uint64_t cycle, std::size_t budget);

  /// Drain everything regardless of port budget (end-of-run settling in
  /// tests/benches — not something hardware can do instantly).
  void drain_all(std::uint64_t cycle);

  // ---- verification & reporting ---------------------------------------------

  /// Ground truth: main + all pending deltas (what a zero-staleness
  /// multi-ported implementation would hold).
  std::int64_t true_value(std::size_t idx) const;

  /// What the packet thread would read right now (no port accounting).
  std::int64_t main_value(std::size_t idx) const {
    return main_.read(idx);
  }

  /// Staleness awareness (paper §4: "the programmer needs to be aware of
  /// the staleness"): the exact error of a packet-thread read of `idx`
  /// right now — the sum of deltas still waiting in the aggregation
  /// arrays. A program can read this alongside main_value to bound its
  /// decision error (e.g. "occupancy is X, overstated by at most E").
  std::int64_t pending_error(std::size_t idx) const;

  DrainPolicy drain_policy() const { return policy_; }

  /// Pending dirty indices across both aggregation arrays.
  std::size_t backlog() const {
    return enq_.fifo.size() + deq_.fifo.size();
  }

  /// Age in cycles of the oldest pending delta (0 if none).
  std::uint64_t oldest_age(std::uint64_t cycle) const;

  /// Staleness of drained entries, in cycles (recorded at application).
  std::uint64_t drained() const { return drained_; }
  std::uint64_t staleness_max() const { return staleness_max_; }
  /// Largest |pending_error| any cell ever reached — the worst observed
  /// deviation between the main array and the true value, sampled at every
  /// aggregation update. The dynamic ground truth for the value analysis's
  /// static staleness-value-error bound.
  std::int64_t value_error_max() const { return value_error_max_; }
  double staleness_mean() const {
    return drained_ == 0
               ? 0.0
               : static_cast<double>(staleness_sum_) /
                     static_cast<double>(drained_);
  }
  std::size_t backlog_max() const { return backlog_max_; }

  const pisa::PortUsage& main_ports() const { return main_.ports(); }

  /// Modeled footprint: main + both aggregation arrays (the §4 trade:
  /// 3x single-ported area instead of one multi-ported array).
  std::size_t bytes() const { return 3 * main_.bytes(); }

 private:
  /// One aggregation array: coalesced deltas + FIFO of dirty indices.
  struct AggArray {
    explicit AggArray(std::size_t size)
        : delta(size, 0), dirty_since(size, 0), in_fifo(size, 0), ports(1) {}
    std::vector<std::int64_t> delta;
    std::vector<std::uint64_t> dirty_since;  ///< cycle the index went dirty
    std::vector<std::uint8_t> in_fifo;
    std::deque<std::uint32_t> fifo;          ///< dirty indices, oldest first
    pisa::PortUsage ports;
  };

  void agg_add(AggArray& arr, std::size_t idx, std::int64_t delta,
               std::uint64_t cycle);
  /// Report one access to the installed RegisterProbe, if any.
  void probe(RegisterRealization realization, RegisterOp op,
             std::size_t idx) const;
  /// Report an RMW with its observed old/new values (sum updates, so the
  /// probe's linearity flag stays true).
  void probe_rmw(RegisterRealization realization, std::size_t idx,
                 std::int64_t old_v, std::int64_t new_v) const;
  /// Apply the oldest entry of `arr` to main; false if arr is clean.
  bool apply_one(AggArray& arr, std::uint64_t cycle);
  void note_backlog();

  std::string name_;
  DrainPolicy policy_;
  pisa::Register<std::int64_t> main_;
  AggArray enq_;
  AggArray deq_;
  bool drain_from_enq_next_ = true;  ///< round-robin between the arrays

  std::uint64_t drained_ = 0;
  std::uint64_t staleness_sum_ = 0;
  std::uint64_t staleness_max_ = 0;
  std::size_t backlog_max_ = 0;
  std::int64_t value_error_max_ = 0;
};

}  // namespace edp::core
