// edp::core — the fused physical-pipeline dispatch plan (paper §4, Fig. 3).
//
// The optimizer (src/analysis/optimizer.hpp) merges a program's logical
// event pipelines into one physical pipeline. At execution time that merge
// is a per-EventKind decision the EventSwitch consults on its hot path:
//
//   kQueued     — the seed behavior: wrap the record in an Event, hand it
//                 to the Event Merger, deliver it in a pipeline slot.
//   kSuppressed — the program provably runs the default (empty) handler
//                 for this event; skip Event construction and delivery
//                 entirely. Architectural counters still tick.
//   kFused      — the handler only coalesces deltas into aggregation side
//                 arrays; run it inline at the point the architecture
//                 observes the event (the TM callback), inside the same
//                 pipeline slot, instead of queueing a carrier slot.
//
// This header is on the per-event hot path and is covered by
// scripts/lint_hotpath.sh: no heap, no std::function — the fused dispatch
// is a branch over a POD array plus direct calls through the templated
// continuation functors the switch passes in.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/event.hpp"

namespace edp::core {

enum class DispatchMode : std::uint8_t {
  kQueued = 0,   ///< merger-delivered carrier slot (seed behavior)
  kSuppressed,   ///< proven-default handler: no event constructed
  kFused,        ///< handler inlined at the observation point
};

/// Per-EventKind dispatch decisions. Value-semantic POD; the default plan
/// (all kQueued) reproduces the unoptimized switch exactly.
struct DispatchPlan {
  std::array<DispatchMode, kNumEventKinds> mode{};

  DispatchMode of(EventKind kind) const {
    return mode[static_cast<std::size_t>(kind)];
  }
  void set(EventKind kind, DispatchMode m) {
    mode[static_cast<std::size_t>(kind)] = m;
  }
  std::size_t count(DispatchMode m) const {
    std::size_t n = 0;
    for (const DispatchMode x : mode) {
      n += static_cast<std::size_t>(x == m);
    }
    return n;
  }
};

/// Hot-path dispatch through a plan entry: `fused` runs the handler inline,
/// `queue` submits a merger event, suppression falls through. Template
/// functors keep this allocation- and indirection-free.
template <typename Record, typename FusedFn, typename QueueFn>
inline void dispatch_via_plan(DispatchMode mode, const Record& record,
                              FusedFn&& fused, QueueFn&& queue) {
  switch (mode) {
    case DispatchMode::kFused:
      fused(record);
      return;
    case DispatchMode::kSuppressed:
      return;
    case DispatchMode::kQueued:
      break;
  }
  queue(record);
}

}  // namespace edp::core
