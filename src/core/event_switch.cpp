#include "core/event_switch.hpp"

#include <cassert>
#include <utility>

namespace edp::core {
namespace {

tm_::TmConfig make_tm_config(const EventSwitchConfig& c) {
  tm_::TmConfig tc;
  tc.num_ports = c.num_ports;
  tc.queues_per_port = c.queues_per_port;
  tc.use_pifo = c.use_pifo;
  tc.queue_limits = c.queue_limits;
  tc.scheduler = c.tm_scheduler;
  tc.dwrr_weights = c.dwrr_weights;
  tc.buffer = c.buffer;
  return tc;
}

}  // namespace

EventSwitch::EventSwitch(sim::Scheduler& sched, EventSwitchConfig config)
    : sched_(sched),
      config_(std::move(config)),
      merger_(sched, config_.merger),
      tm_(make_tm_config(config_)),
      timers_(sched, config_.timer_resolution),
      pktgen_(sched),
      parser_(pisa::Parser::standard()) {
  ports_.resize(config_.num_ports);

  // Default delivery policy (see enable_event doc).
  if (config_.event_architecture) {
    deliver_[static_cast<std::size_t>(EventKind::kEnqueue)] = true;
    deliver_[static_cast<std::size_t>(EventKind::kDequeue)] = true;
    deliver_[static_cast<std::size_t>(EventKind::kBufferOverflow)] = true;
    deliver_[static_cast<std::size_t>(EventKind::kTimer)] = true;
    deliver_[static_cast<std::size_t>(EventKind::kControlPlane)] = true;
    deliver_[static_cast<std::size_t>(EventKind::kLinkStatus)] = true;
    deliver_[static_cast<std::size_t>(EventKind::kUser)] = true;
  }

  merger_.on_slot = [this](SlotWork&& work) { process_slot(std::move(work)); };

  // TM events consult the dispatch plan (paper §4, Fig. 3): the default
  // plan queues a merger event (seed behavior); a fused plan runs the
  // handler inline in the slot that observed the event; a suppressed plan
  // (proven-default handler) skips the event entirely. Counters tick at
  // observe() regardless, so the plan is invisible to the replay digest.
  tm_.on_enqueue = [this](const tm_::EnqueueRecord& r) {
    observe(EventKind::kEnqueue);
    dispatch_via_plan(
        plan_.of(EventKind::kEnqueue), r,
        [this](const tm_::EnqueueRecord& rec) {
          if (program_ != nullptr) {
            program_->on_enqueue(rec, *this);
          }
        },
        [this](const tm_::EnqueueRecord& rec) {
          submit_if_enabled(Event::enqueue(rec));
        });
  };
  tm_.on_dequeue = [this](const tm_::DequeueRecord& r) {
    observe(EventKind::kDequeue);
    dispatch_via_plan(
        plan_.of(EventKind::kDequeue), r,
        [this](const tm_::DequeueRecord& rec) {
          if (program_ != nullptr) {
            program_->on_dequeue(rec, *this);
          }
        },
        [this](const tm_::DequeueRecord& rec) {
          submit_if_enabled(Event::dequeue(rec));
        });
  };
  tm_.on_drop = [this](const tm_::DropRecord& r) {
    observe(EventKind::kBufferOverflow);
    dispatch_via_plan(
        plan_.of(EventKind::kBufferOverflow), r,
        [this](const tm_::DropRecord& rec) {
          if (program_ != nullptr) {
            program_->on_overflow(rec, *this);
          }
        },
        [this](const tm_::DropRecord& rec) {
          submit_if_enabled(Event::overflow(rec));
        });
  };
  tm_.on_underflow = [this](const tm_::UnderflowRecord& r) {
    observe(EventKind::kBufferUnderflow);
    dispatch_via_plan(
        plan_.of(EventKind::kBufferUnderflow), r,
        [this](const tm_::UnderflowRecord& rec) {
          if (program_ != nullptr) {
            program_->on_underflow(rec, *this);
          }
        },
        [this](const tm_::UnderflowRecord& rec) {
          submit_if_enabled(Event::underflow(rec));
        });
  };

  // Timer expirations arrive coalesced: one burst per timer-block wake,
  // handed to the merger with a single submit_events call (one slot pump)
  // instead of a merger round-trip per timer.
  timers_.on_expire_batch = [this](const TimerEventData* d, std::size_t n) {
    timer_burst_.clear();
    const bool deliver = deliver_[static_cast<std::size_t>(EventKind::kTimer)];
    for (std::size_t i = 0; i < n; ++i) {
      observe(EventKind::kTimer);
      if (deliver) {
        timer_burst_.push_back(Event::timer(d[i], sched_.now()));
      }
    }
    merger_.submit_events(timer_burst_.data(), timer_burst_.size());
  };

  pktgen_.on_generate = [this](GeneratorId, net::Packet pkt) {
    observe(EventKind::kGeneratedPacket);
    ++counters_.generated;
    pkt.meta().ingress_port = kPortGenerated;
    pkt.meta().arrival = sched_.now();
    pkt.meta().trace_id = next_trace_id_++;
    merger_.submit_packet(std::move(pkt), PacketOrigin::kGenerated);
  };
}

void EventSwitch::set_program(EventProgram* program) {
  program_ = program;
  if (program_ != nullptr) {
    program_->on_attach(*this);
  }
}

void EventSwitch::connect_tx(std::uint16_t port,
                             std::function<void(net::Packet)> tx) {
  assert(port < ports_.size());
  ports_[port].tx = std::move(tx);
}

void EventSwitch::receive(std::uint16_t port, net::Packet packet) {
  assert(port < ports_.size());
  ++counters_.rx_packets;
  observe(EventKind::kIngressPacket);
  packet.meta().ingress_port = port;
  packet.meta().arrival = sched_.now();
  packet.meta().trace_id = next_trace_id_++;
  merger_.submit_packet(std::move(packet), PacketOrigin::kIngress);
}

void EventSwitch::set_link_status(std::uint16_t port, bool up) {
  assert(port < ports_.size());
  if (ports_[port].link_up == up) {
    return;
  }
  ports_[port].link_up = up;
  observe(EventKind::kLinkStatus);
  submit_if_enabled(
      Event::link_status(LinkStatusEventData{port, up, sched_.now()}));
  if (up) {
    try_transmit(port);
  }
}

bool EventSwitch::control_event(const ControlEventData& data) {
  observe(EventKind::kControlPlane);
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return false;
  }
  if (plan_.of(EventKind::kControlPlane) == DispatchMode::kSuppressed) {
    return true;  // proven-default handler: accepted, nothing would run
  }
  return merger_.submit_event(Event::control(data, sched_.now()));
}

void EventSwitch::inject_from_control_plane(net::Packet packet) {
  ++counters_.rx_packets;
  observe(EventKind::kIngressPacket);
  packet.meta().ingress_port = kPortCpu;
  packet.meta().arrival = sched_.now();
  packet.meta().trace_id = next_trace_id_++;
  merger_.submit_packet(std::move(packet), PacketOrigin::kIngress);
}

void EventSwitch::set_multicast_group(std::uint16_t group_id,
                                      std::vector<std::uint16_t> ports) {
  assert(group_id != 0 && "multicast group 0 means 'no multicast'");
  mcast_[group_id] = std::move(ports);
}

void EventSwitch::register_aggregated(AggregatedRegister& reg) {
  aggregated_.push_back(&reg);
}

void EventSwitch::set_dispatch_plan(const DispatchPlan& plan) {
  plan_ = plan;
  // Suppressed kinds outside the TM callbacks (timer, link status, control,
  // user, transmit) are filtered at their existing delivery gates; fusion
  // is only defined for TM events, so any other kFused entry degrades to
  // queued delivery. One-way by design: install the plan once, after
  // set_program and before traffic.
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (plan_.mode[k] == DispatchMode::kSuppressed) {
      deliver_[k] = false;
    }
  }
}

void EventSwitch::settle() {
  for (auto* reg : aggregated_) {
    reg->drain_all(merger_.current_cycle());
  }
}

bool EventSwitch::link_up(std::uint16_t port) const {
  return port < ports_.size() && ports_[port].link_up;
}

std::size_t EventSwitch::queue_bytes(std::uint16_t port,
                                     std::uint8_t qid) const {
  return tm_.queue_bytes(port, qid);
}

bool EventSwitch::inject_packet(net::Packet packet) {
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return false;
  }
  observe(EventKind::kGeneratedPacket);
  ++counters_.generated;
  packet.meta().ingress_port = kPortGenerated;
  packet.meta().arrival = sched_.now();
  packet.meta().trace_id = next_trace_id_++;
  return merger_.submit_packet(std::move(packet), PacketOrigin::kGenerated);
}

bool EventSwitch::send_packet(net::Packet packet, std::uint16_t port,
                              std::uint8_t qid) {
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return false;
  }
  if (port >= ports_.size() || qid >= config_.queues_per_port) {
    ++counters_.bad_port_drops;
    return false;
  }
  tm_::QueuedPacket qp;
  qp.packet = std::move(packet);
  const bool ok = tm_.enqueue(port, qid, std::move(qp), {}, sched_.now());
  if (ok) {
    try_transmit(port);
  }
  return ok;
}

TimerId EventSwitch::set_periodic_timer(sim::Time period,
                                        std::uint64_t cookie) {
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return 0;
  }
  return timers_.set_periodic(period, cookie);
}

TimerId EventSwitch::set_oneshot_timer(sim::Time delay,
                                       std::uint64_t cookie) {
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return 0;
  }
  return timers_.set_oneshot(delay, cookie);
}

bool EventSwitch::cancel_timer(TimerId id) { return timers_.cancel(id); }

GeneratorId EventSwitch::add_generator(PacketGenerator::Config config) {
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return 0;
  }
  return pktgen_.add(std::move(config));
}

void EventSwitch::trigger_generator(GeneratorId id, std::uint64_t n) {
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return;
  }
  pktgen_.trigger(id, n);
}

bool EventSwitch::set_generator_template(GeneratorId id, net::Packet tmpl) {
  return pktgen_.set_template(id, std::move(tmpl));
}

bool EventSwitch::raise_user_event(const UserEventData& data) {
  observe(EventKind::kUser);
  if (!config_.event_architecture) {
    ++counters_.refused_ops;
    return false;
  }
  if (plan_.of(EventKind::kUser) == DispatchMode::kSuppressed) {
    return true;  // proven-default handler: accepted, nothing would run
  }
  return merger_.submit_event(Event::user(data, sched_.now()));
}

void EventSwitch::notify_control_plane(const ControlEventData& msg) {
  ++counters_.punts;
  if (on_punt) {
    on_punt(msg);
  }
}

void EventSwitch::enable_event(EventKind kind, bool enabled) {
  if (!config_.event_architecture) {
    return;  // baseline architectures have no event delivery to enable
  }
  deliver_[static_cast<std::size_t>(kind)] = enabled;
}

bool EventSwitch::event_enabled(EventKind kind) const {
  return deliver_[static_cast<std::size_t>(kind)];
}

std::string EventSwitch::describe() const {
  char buf[512];
  std::string out = config_.name + " (" +
                    (config_.event_architecture ? "event-driven"
                                                : "baseline PISA") +
                    ", shard " + std::to_string(config_.shard_id) + ")\n";
  std::snprintf(buf, sizeof buf,
                "  packets: rx=%llu tx=%llu (%.3f MB) drops: parse=%llu "
                "program=%llu bad_port=%llu tm=%llu\n",
                static_cast<unsigned long long>(counters_.rx_packets),
                static_cast<unsigned long long>(counters_.tx_packets),
                static_cast<double>(counters_.tx_bytes) / 1e6,
                static_cast<unsigned long long>(counters_.parse_drops),
                static_cast<unsigned long long>(counters_.program_drops),
                static_cast<unsigned long long>(counters_.bad_port_drops),
                static_cast<unsigned long long>(tm_.drops_total()));
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  slots: %llu total, %llu packet, %llu carrier; events "
      "piggybacked=%llu carried=%llu; recirc=%llu gen=%llu punts=%llu\n",
      static_cast<unsigned long long>(merger_.slots_total()),
      static_cast<unsigned long long>(merger_.slots_with_packet()),
      static_cast<unsigned long long>(merger_.slots_carrier()),
      static_cast<unsigned long long>(merger_.events_piggybacked()),
      static_cast<unsigned long long>(merger_.events_on_carrier()),
      static_cast<unsigned long long>(counters_.recirculated),
      static_cast<unsigned long long>(counters_.generated),
      static_cast<unsigned long long>(counters_.punts));
  out += buf;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto& st = merger_.kind_stats(kind);
    if (counters_.observed[k] == 0 && st.submitted == 0) {
      continue;
    }
    std::snprintf(buf, sizeof buf,
                  "  %-22s observed=%llu delivered=%llu dropped=%llu "
                  "wait_mean=%s\n",
                  std::string(to_string(kind)).c_str(),
                  static_cast<unsigned long long>(counters_.observed[k]),
                  static_cast<unsigned long long>(st.delivered),
                  static_cast<unsigned long long>(st.dropped),
                  st.wait_mean().to_string().c_str());
    out += buf;
  }
  return out;
}

std::uint64_t EventSwitch::cycles_elapsed() const {
  if (!saw_slot_) {
    return 0;
  }
  return merger_.current_cycle() - first_slot_cycle_ + 1;
}

void EventSwitch::submit_if_enabled(Event ev) {
  if (!deliver_[static_cast<std::size_t>(ev.kind)]) {
    return;
  }
  merger_.submit_event(std::move(ev));
}

void EventSwitch::process_slot(SlotWork&& work) {
  if (!saw_slot_) {
    saw_slot_ = true;
    first_slot_cycle_ = work.cycle;
  }

  // §4: spare cycles between this slot and the previous one are drain
  // bandwidth for aggregated state. (Credited at the current cycle, so the
  // measured staleness is a slight over-estimate — an upper bound.)
  if (!aggregated_.empty()) {
    std::uint64_t budget = merger_.last_gap_cycles();
    // A slot without a packet leaves the main register's packet-thread
    // port free this cycle as well.
    if (!work.packet) {
      budget += 1;
    }
    if (budget > 0) {
      for (auto* reg : aggregated_) {
        reg->drain(work.cycle, budget);
      }
    }
  }

  // Deliver the slot's events to the program's handlers, then hand the
  // slot's event vector back to the merger for reuse. The packet (if any)
  // is detached first: the SlotWork shell is dead after recycle().
  std::optional<net::Packet> packet = std::move(work.packet);
  const PacketOrigin origin = work.origin;
  for (const Event& ev : work.events) {
    dispatch_event(ev);
  }
  merger_.recycle(std::move(work));

  // Process the slot's packet through the P4 pipeline.
  if (!packet) {
    return;
  }
  pisa::Phv phv = parser_.parse(std::move(*packet));
  if (phv.parse_error) {
    ++counters_.parse_drops;
    return;
  }
  if (program_ != nullptr) {
    switch (origin) {
      case PacketOrigin::kIngress:
        program_->on_ingress(phv, *this);
        break;
      case PacketOrigin::kRecirculated:
        observe(EventKind::kRecirculatedPacket);
        program_->on_recirculate(phv, *this);
        break;
      case PacketOrigin::kGenerated:
        program_->on_generated(phv, *this);
        break;
    }
  }
  route(std::move(phv));
}

void EventSwitch::dispatch_event(const Event& ev) {
  if (program_ == nullptr) {
    return;
  }
  switch (ev.kind) {
    case EventKind::kEnqueue:
      program_->on_enqueue(std::get<tm_::EnqueueRecord>(ev.data), *this);
      break;
    case EventKind::kDequeue:
      program_->on_dequeue(std::get<tm_::DequeueRecord>(ev.data), *this);
      break;
    case EventKind::kBufferOverflow:
      program_->on_overflow(std::get<tm_::DropRecord>(ev.data), *this);
      break;
    case EventKind::kBufferUnderflow:
      program_->on_underflow(std::get<tm_::UnderflowRecord>(ev.data), *this);
      break;
    case EventKind::kTimer:
      program_->on_timer(std::get<TimerEventData>(ev.data), *this);
      break;
    case EventKind::kControlPlane:
      program_->on_control(std::get<ControlEventData>(ev.data), *this);
      break;
    case EventKind::kLinkStatus:
      program_->on_link_status(std::get<LinkStatusEventData>(ev.data), *this);
      break;
    case EventKind::kUser:
      program_->on_user(std::get<UserEventData>(ev.data), *this);
      break;
    case EventKind::kPacketTransmitted:
      program_->on_transmit(std::get<TransmitRecord>(ev.data), *this);
      break;
    default:
      break;  // packet events never travel the event path
  }
}

void EventSwitch::route(pisa::Phv&& phv) {
  if (phv.std_meta.drop) {
    ++counters_.program_drops;
    return;
  }
  if (phv.std_meta.recirculate) {
    if (phv.packet.meta().recirc_count >= config_.max_recirculations) {
      ++counters_.recirc_loop_drops;  // loop guard, as real targets bound
      return;
    }
    ++counters_.recirculated;
    phv.std_meta.recirculate = false;
    net::Packet pkt = deparser_.deparse(phv);
    ++pkt.meta().recirc_count;
    merger_.submit_packet(std::move(pkt), PacketOrigin::kRecirculated);
    return;
  }
  tm_::EventMetaWords enq_meta{};
  tm_::EventMetaWords deq_meta{};
  for (std::size_t i = 0; i < 4; ++i) {
    enq_meta[i] = phv.user[kEnqMetaBase + i];
    deq_meta[i] = phv.user[kDeqMetaBase + i];
  }
  const std::uint8_t qid = phv.std_meta.qid;

  if (phv.std_meta.mcast_group != 0) {
    // Packet replication engine: one independent copy per group member.
    // Each enqueue copies `wire` — replicas each own a copy, and the copy
    // keeps the pooled deparse buffer recycling locally instead of being
    // pinned in the traffic manager while queues build up (see the replay
    // steady-state allocation gauge).
    const auto it = mcast_.find(phv.std_meta.mcast_group);
    if (it == mcast_.end()) {
      ++counters_.bad_port_drops;
      return;
    }
    const net::Packet wire = deparser_.deparse(phv);
    for (const std::uint16_t port : it->second) {
      if (port >= ports_.size() || qid >= config_.queues_per_port) {
        ++counters_.bad_port_drops;
        continue;
      }
      tm_::QueuedPacket qp;
      qp.rank = phv.std_meta.pifo_rank;
      qp.deq_meta = deq_meta;
      qp.packet = wire;
      if (tm_.enqueue(port, qid, std::move(qp), enq_meta, sched_.now())) {
        try_transmit(port);
      }
      // On failure the TM has already fired the overflow event.
    }
    return;
  }

  // Unicast: deparse straight into the queued packet's own (plain, non-
  // pooled) buffer — no intermediate pooled emit + copy-out. The queue
  // owning a plain buffer is also what the replay steady-state allocation
  // gauge wants: packets resident in the traffic manager must not pin
  // pooled buffers while queues build up.
  const std::uint16_t port = phv.std_meta.egress_port;
  if (port >= ports_.size() || qid >= config_.queues_per_port) {
    ++counters_.bad_port_drops;
    return;
  }
  tm_::QueuedPacket qp;
  qp.rank = phv.std_meta.pifo_rank;
  qp.deq_meta = deq_meta;
  deparser_.deparse_into(phv, qp.packet);
  if (tm_.enqueue(port, qid, std::move(qp), enq_meta, sched_.now())) {
    try_transmit(port);
  }
  // On failure the TM has already fired the overflow event.
}

void EventSwitch::try_transmit(std::uint16_t port) {
  PortState& ps = ports_[port];
  // Loop (not recursion): the egress pipeline may drop many consecutive
  // queued packets, and the next candidate must be served from the same
  // activation without growing the stack.
  while (!ps.busy && ps.link_up && !tm_.port_empty(port)) {
    auto qp = tm_.dequeue(port, sched_.now());
    assert(qp.has_value());
    net::Packet pkt = std::move(qp->packet);

    if (config_.egress_pipeline && program_ != nullptr) {
      observe(EventKind::kEgressPacket);
      pisa::Phv phv = parser_.parse(std::move(pkt));
      if (!phv.parse_error) {
        phv.std_meta.egress_port = port;
        phv.std_meta.enqueue_timestamp = qp->enqueue_time;
        program_->on_egress(phv, *this);
        if (phv.std_meta.drop) {
          ++counters_.program_drops;
          continue;  // port still free; serve the next packet
        }
        if (phv.std_meta.recirc_clone &&
            phv.packet.meta().recirc_count < config_.max_recirculations) {
          // Tofino-style egress mirror to the recirculation port (§6):
          // a copy re-enters ingress — this is how a baseline
          // architecture emulates dequeue events, paying a pipeline slot
          // per cloned packet.
          phv.std_meta.recirc_clone = false;
          net::Packet clone = deparser_.deparse(phv);
          ++clone.meta().recirc_count;
          ++counters_.recirculated;
          merger_.submit_packet(std::move(clone),
                                PacketOrigin::kRecirculated);
        }
        pkt = deparser_.deparse(phv);
      } else {
        pkt = std::move(phv.packet);  // pass through unmodified
      }
    }

    ps.busy = true;
    const auto bytes = static_cast<std::uint32_t>(pkt.size());
    const sim::Time tx_time =
        sim::serialization_time(bytes, config_.port_rate_bps);
    sched_.after(tx_time, [this, port, bytes, p = std::move(pkt)]() mutable {
      if (ports_[port].tx) {
        ports_[port].tx(std::move(p));
      }
      finish_transmit(port, bytes);
    });
  }
}

void EventSwitch::finish_transmit(std::uint16_t port, std::uint32_t bytes) {
  PortState& ps = ports_[port];
  ps.busy = false;
  ++counters_.tx_packets;
  counters_.tx_bytes += bytes;
  observe(EventKind::kPacketTransmitted);
  submit_if_enabled(
      Event::transmitted(TransmitRecord{port, bytes, sched_.now()}));
  try_transmit(port);
}

}  // namespace edp::core
