// edp::core — observation hook for stateful register externs.
//
// The static feasibility analyzer (src/analysis/) needs to see which
// register each event handler touches, how (read / write / RMW), and as
// which event-processing thread — the handler-thread × register access
// matrix of paper §4. Rather than threading an observer through every
// extern call site, the registers report each access to a process-wide
// probe when one is installed. With no probe installed the cost on the
// hot path is a single relaxed atomic load and branch.
//
// The probe is meant for single-threaded analysis drives (a recording
// EventContext invoking handlers directly); installing one while a
// parallel runtime is executing programs is not supported.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace edp::core {

/// Identifies which event-processing thread performs an access (the paper's
/// logical pipelines of Figure 2). Lives here, next to the probe types that
/// report it; shared_register.hpp re-exports it to its callers.
enum class ThreadId : std::uint8_t {
  kIngress = 0,
  kEgress,
  kEnqueue,
  kDequeue,
  kTimer,
  kOther,
};
inline constexpr std::size_t kNumThreads = 6;

std::string_view to_string(ThreadId thread);

/// How an access entered the register.
enum class RegisterOp : std::uint8_t { kRead, kWrite, kRmw };

/// Which physical realization (and, for aggregated state, which array)
/// performed the access. Paper §4: kShared = multi-ported memory;
/// the kAggregated* values are the single-ported main register plus its
/// two aggregation side arrays.
enum class RegisterRealization : std::uint8_t {
  kShared,
  kAggregatedMain,
  kAggregatedEnq,
  kAggregatedDeq,
};

std::string_view to_string(RegisterOp op);
std::string_view to_string(RegisterRealization realization);

/// One register access, as reported by the extern performing it.
struct RegisterAccessEvent {
  const void* reg = nullptr;  ///< identity of the extern instance
  std::string_view name;      ///< the extern's configured name
  RegisterRealization realization = RegisterRealization::kShared;
  RegisterOp op = RegisterOp::kRead;
  /// Thread the *caller declared* (SharedRegister API). Aggregated
  /// registers report kOther; their realization already fixes the array.
  ThreadId declared_thread = ThreadId::kOther;
  std::size_t index = 0;
  std::size_t size = 0;  ///< cells in the array
  int ports = 1;         ///< configured port budget
  /// Process-wide sequence number, stamped by report_register_access():
  /// gives the analyzer a total order over accesses so it can distinguish
  /// read-before-write from write-only traces (the dataflow IR).
  std::uint64_t seq = 0;
  /// For integral RMW accesses the register also reports the observed
  /// old/new cell values. The optimizer derives the aggregation merge
  /// function from these (new - old = the coalescible delta); non-integral
  /// or non-RMW accesses leave has_rmw_values false.
  bool has_rmw_values = false;
  std::int64_t rmw_old = 0;
  std::int64_t rmw_new = 0;
  /// Translation-equivariance of the RMW's update function, tested by the
  /// reporting register at probe time: fn(v + k) - (v + k) == fn(v) - v for
  /// the probed offsets, i.e. the update is a pure delta independent of the
  /// current value. False marks overwrite/saturate-style updates whose
  /// deferred reordering (aggregation side arrays, shards) changes the
  /// result — the value analysis's merge-commutativity witness.
  bool rmw_linear = true;
};

/// Implemented by the analyzer's recorder.
class RegisterProbe {
 public:
  virtual ~RegisterProbe() = default;
  virtual void on_register_access(const RegisterAccessEvent& access) = 0;
};

/// Install `probe` (nullptr to uninstall); returns the previous probe.
RegisterProbe* exchange_register_probe(RegisterProbe* probe);

/// The currently installed probe, or nullptr (relaxed load).
RegisterProbe* active_register_probe();

/// Stamp `access.seq` from the process-wide sequence counter and dispatch
/// it to the active probe, if any. The registers call this instead of
/// dispatching directly so every probe sees totally ordered accesses.
void report_register_access(RegisterAccessEvent access);

}  // namespace edp::core
