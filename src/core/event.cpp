#include "core/event.hpp"

namespace edp::core {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kIngressPacket:
      return "IngressPacket";
    case EventKind::kEgressPacket:
      return "EgressPacket";
    case EventKind::kRecirculatedPacket:
      return "RecirculatedPacket";
    case EventKind::kGeneratedPacket:
      return "GeneratedPacket";
    case EventKind::kPacketTransmitted:
      return "PacketTransmitted";
    case EventKind::kEnqueue:
      return "BufferEnqueue";
    case EventKind::kDequeue:
      return "BufferDequeue";
    case EventKind::kBufferOverflow:
      return "BufferOverflow";
    case EventKind::kBufferUnderflow:
      return "BufferUnderflow";
    case EventKind::kTimer:
      return "TimerExpiration";
    case EventKind::kControlPlane:
      return "ControlPlaneTriggered";
    case EventKind::kLinkStatus:
      return "LinkStatusChange";
    case EventKind::kUser:
      return "UserEvent";
  }
  return "Unknown";
}

Event Event::enqueue(tm_::EnqueueRecord r) {
  return Event{EventKind::kEnqueue, r.when, std::move(r)};
}
Event Event::dequeue(tm_::DequeueRecord r) {
  return Event{EventKind::kDequeue, r.when, std::move(r)};
}
Event Event::overflow(tm_::DropRecord r) {
  return Event{EventKind::kBufferOverflow, r.when, std::move(r)};
}
Event Event::underflow(tm_::UnderflowRecord r) {
  return Event{EventKind::kBufferUnderflow, r.when, std::move(r)};
}
Event Event::timer(TimerEventData d, sim::Time created) {
  return Event{EventKind::kTimer, created, std::move(d)};
}
Event Event::control(ControlEventData d, sim::Time created) {
  return Event{EventKind::kControlPlane, created, std::move(d)};
}
Event Event::link_status(LinkStatusEventData d) {
  return Event{EventKind::kLinkStatus, d.when, std::move(d)};
}
Event Event::user(UserEventData d, sim::Time created) {
  return Event{EventKind::kUser, created, std::move(d)};
}
Event Event::transmitted(TransmitRecord r) {
  return Event{EventKind::kPacketTransmitted, r.when, std::move(r)};
}

}  // namespace edp::core
