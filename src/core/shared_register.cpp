// SharedRegister is a header-only template; this TU anchors the module.
#include "core/shared_register.hpp"

namespace edp::core {
// (intentionally empty)
}  // namespace edp::core
