#include "core/baseline_switch.hpp"

namespace edp::core {

EventSwitchConfig make_baseline_config(EventSwitchConfig config) {
  config.event_architecture = false;
  config.egress_pipeline = true;  // the PSA has an egress pipeline
  return config;
}

}  // namespace edp::core
