#include "core/event_program.hpp"

namespace edp::core {

// Default handlers are intentionally empty: a program opts into exactly the
// events it needs. Defined out-of-line to anchor the vtable in this TU.

void EventProgram::on_ingress(pisa::Phv&, EventContext&) {}
void EventProgram::on_egress(pisa::Phv&, EventContext&) {}
void EventProgram::on_recirculate(pisa::Phv&, EventContext&) {}
void EventProgram::on_generated(pisa::Phv&, EventContext&) {}
void EventProgram::on_enqueue(const tm_::EnqueueRecord&, EventContext&) {}
void EventProgram::on_dequeue(const tm_::DequeueRecord&, EventContext&) {}
void EventProgram::on_overflow(const tm_::DropRecord&, EventContext&) {}
void EventProgram::on_underflow(const tm_::UnderflowRecord&, EventContext&) {}
void EventProgram::on_transmit(const TransmitRecord&, EventContext&) {}
void EventProgram::on_timer(const TimerEventData&, EventContext&) {}
void EventProgram::on_control(const ControlEventData&, EventContext&) {}
void EventProgram::on_link_status(const LinkStatusEventData&, EventContext&) {}
void EventProgram::on_user(const UserEventData&, EventContext&) {}
void EventProgram::on_attach(EventContext&) {}

}  // namespace edp::core
