#include "core/event_program.hpp"

namespace edp::core {

// Default handlers are intentionally empty: a program opts into exactly the
// events it needs. Defined out-of-line to anchor the vtable in this TU.
//
// Each default body additionally marks itself in the installed
// default-handler trace (analysis drives only; nullptr on the production
// path, one branch per delivered event). A driven handler whose bit is set
// provably does nothing, which is what lets the optimizer suppress its
// event delivery.

namespace {
std::uint32_t* g_default_trace = nullptr;

inline void note_default(ProgramHandler h) {
  if (g_default_trace != nullptr) {
    *g_default_trace |= 1u << static_cast<std::uint32_t>(h);
  }
}
}  // namespace

std::uint32_t* exchange_default_handler_trace(std::uint32_t* mask) {
  std::uint32_t* prev = g_default_trace;
  g_default_trace = mask;
  return prev;
}

void EventProgram::on_ingress(pisa::Phv&, EventContext&) {
  note_default(ProgramHandler::kIngress);
}
void EventProgram::on_egress(pisa::Phv&, EventContext&) {
  note_default(ProgramHandler::kEgress);
}
void EventProgram::on_recirculate(pisa::Phv&, EventContext&) {
  note_default(ProgramHandler::kRecirculate);
}
void EventProgram::on_generated(pisa::Phv&, EventContext&) {
  note_default(ProgramHandler::kGenerated);
}
void EventProgram::on_enqueue(const tm_::EnqueueRecord&, EventContext&) {
  note_default(ProgramHandler::kEnqueue);
}
void EventProgram::on_dequeue(const tm_::DequeueRecord&, EventContext&) {
  note_default(ProgramHandler::kDequeue);
}
void EventProgram::on_overflow(const tm_::DropRecord&, EventContext&) {
  note_default(ProgramHandler::kOverflow);
}
void EventProgram::on_underflow(const tm_::UnderflowRecord&, EventContext&) {
  note_default(ProgramHandler::kUnderflow);
}
void EventProgram::on_transmit(const TransmitRecord&, EventContext&) {
  note_default(ProgramHandler::kTransmit);
}
void EventProgram::on_timer(const TimerEventData&, EventContext&) {
  note_default(ProgramHandler::kTimer);
}
void EventProgram::on_control(const ControlEventData&, EventContext&) {
  note_default(ProgramHandler::kControl);
}
void EventProgram::on_link_status(const LinkStatusEventData&, EventContext&) {
  note_default(ProgramHandler::kLinkStatus);
}
void EventProgram::on_user(const UserEventData&, EventContext&) {
  note_default(ProgramHandler::kUser);
}
void EventProgram::on_attach(EventContext&) {
  note_default(ProgramHandler::kAttach);
}

bool EventProgram::realize_aggregated(std::string_view) { return false; }

void EventProgram::visit_aggregated(
    const std::function<void(AggregatedRegister&)>&) {}

}  // namespace edp::core
