#include "core/register_probe.hpp"

#include <atomic>

namespace edp::core {
namespace {

// Relaxed everywhere: the probe is installed/removed only around
// single-threaded analysis drives, never while worker threads run.
std::atomic<RegisterProbe*> g_probe{nullptr};
std::atomic<std::uint64_t> g_seq{0};

}  // namespace

std::string_view to_string(ThreadId thread) {
  switch (thread) {
    case ThreadId::kIngress:
      return "ingress";
    case ThreadId::kEgress:
      return "egress";
    case ThreadId::kEnqueue:
      return "enqueue";
    case ThreadId::kDequeue:
      return "dequeue";
    case ThreadId::kTimer:
      return "timer";
    case ThreadId::kOther:
      return "other";
  }
  return "?";
}

std::string_view to_string(RegisterOp op) {
  switch (op) {
    case RegisterOp::kRead:
      return "read";
    case RegisterOp::kWrite:
      return "write";
    case RegisterOp::kRmw:
      return "rmw";
  }
  return "?";
}

std::string_view to_string(RegisterRealization realization) {
  switch (realization) {
    case RegisterRealization::kShared:
      return "shared";
    case RegisterRealization::kAggregatedMain:
      return "aggregated.main";
    case RegisterRealization::kAggregatedEnq:
      return "aggregated.enq";
    case RegisterRealization::kAggregatedDeq:
      return "aggregated.deq";
  }
  return "?";
}

RegisterProbe* exchange_register_probe(RegisterProbe* probe) {
  return g_probe.exchange(probe, std::memory_order_relaxed);
}

RegisterProbe* active_register_probe() {
  return g_probe.load(std::memory_order_relaxed);
}

void report_register_access(RegisterAccessEvent access) {
  if (RegisterProbe* p = active_register_probe()) {
    access.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    p->on_register_access(access);
  }
}

}  // namespace edp::core
