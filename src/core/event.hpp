// edp::core — the data-plane event model (paper Table 1).
//
// A data-plane event is "an architectural state change that triggers
// processing in the programming model". This file defines the full set of
// thirteen events the paper identifies, each with a typed metadata payload.
// Packet events carry a PHV through the pipeline; the remaining events
// carry small metadata records that the Event Merger places into pipeline
// slots (piggybacked on packets or on injected carrier frames).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <variant>

#include "sim/time.hpp"
#include "tm/traffic_manager.hpp"

namespace edp::core {

/// Table 1: the useful data-plane events.
enum class EventKind : std::uint8_t {
  kIngressPacket,      ///< packet arrived on a port
  kEgressPacket,       ///< packet leaving through the egress pipeline
  kRecirculatedPacket, ///< packet re-submitted to ingress by the program
  kGeneratedPacket,    ///< packet produced by the packet generator
  kPacketTransmitted,  ///< last bit of a packet left a port
  kEnqueue,            ///< packet admitted to a buffer queue
  kDequeue,            ///< packet served from a buffer queue
  kBufferOverflow,     ///< packet dropped at buffer admission
  kBufferUnderflow,    ///< port had nothing to serve
  kTimer,              ///< a configured timer expired
  kControlPlane,       ///< control-plane triggered event
  kLinkStatus,         ///< link went up or down
  kUser,               ///< program-raised event
};

inline constexpr std::size_t kNumEventKinds = 13;

std::string_view to_string(EventKind kind);

/// Timer expiration payload.
struct TimerEventData {
  std::uint32_t timer_id = 0;
  std::uint64_t cookie = 0;           ///< program-chosen value
  sim::Time scheduled_for = sim::Time::zero();
  sim::Time fired_at = sim::Time::zero();  ///< wheel-quantized fire time
};

/// Control-plane triggered payload (an opcode + arguments the program
/// interprets; this is how the CP pokes a running data-plane program).
struct ControlEventData {
  std::uint32_t opcode = 0;
  std::array<std::uint64_t, 4> args{};
};

/// Link status change payload.
struct LinkStatusEventData {
  std::uint16_t port = 0;
  bool up = true;
  sim::Time when = sim::Time::zero();
};

/// Program-raised user event payload.
struct UserEventData {
  std::uint32_t id = 0;
  std::array<std::uint64_t, 4> words{};
};

/// Packet fully serialized out of a port.
struct TransmitRecord {
  std::uint16_t port = 0;
  std::uint32_t pkt_len = 0;
  sim::Time when = sim::Time::zero();
};

/// A queued (non-packet) data-plane event: kind + typed payload + the time
/// the architecture observed it (for delivery-latency accounting).
struct Event {
  EventKind kind = EventKind::kUser;
  sim::Time created = sim::Time::zero();
  std::variant<std::monostate, tm_::EnqueueRecord, tm_::DequeueRecord,
               tm_::DropRecord, tm_::UnderflowRecord, TimerEventData,
               ControlEventData, LinkStatusEventData, UserEventData,
               TransmitRecord>
      data;

  static Event enqueue(tm_::EnqueueRecord r);
  static Event dequeue(tm_::DequeueRecord r);
  static Event overflow(tm_::DropRecord r);
  static Event underflow(tm_::UnderflowRecord r);
  static Event timer(TimerEventData d, sim::Time created);
  static Event control(ControlEventData d, sim::Time created);
  static Event link_status(LinkStatusEventData d);
  static Event user(UserEventData d, sim::Time created);
  static Event transmitted(TransmitRecord r);
};

}  // namespace edp::core
