// edp::core — the event-driven programming model (paper §2).
//
// An `EventProgram` is the C++ transliteration of an event-driven P4
// program: one handler per data-plane event kind, each the body of a
// logical pipeline from Figure 2. Handlers share state through the
// program's member externs (SharedRegister / AggregatedRegister / tables),
// exactly as P4 controls share extern instances declared at top level.
//
// The `EventContext` is the architecture surface a handler may touch:
// time/cycle, timers, the packet generator, user events, and the
// control-plane channel. On a baseline PISA architecture (paper Figure 1)
// the non-packet facilities are unavailable — the context reports and
// counts such attempts so baseline-vs-event comparisons are honest.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "core/event.hpp"
#include "core/packet_generator.hpp"
#include "pisa/phv.hpp"

namespace edp::core {

class AggregatedRegister;

using TimerId = std::uint32_t;

/// Handler identity for the default-handler trace, aligned with the
/// analyzer's Handler enum (attach first, then the 13 data-plane events).
enum class ProgramHandler : std::uint8_t {
  kAttach = 0,
  kIngress,
  kEgress,
  kRecirculate,
  kGenerated,
  kTransmit,
  kEnqueue,
  kDequeue,
  kOverflow,
  kUnderflow,
  kTimer,
  kControl,
  kLinkStatus,
  kUser,
};
inline constexpr std::size_t kNumProgramHandlers = 14;

/// Install a bitmask (nullptr to uninstall) that each *default* handler
/// body sets its ProgramHandler bit in when invoked. The analysis driver
/// installs one around its drives: a handler that was driven but only ever
/// hit the default body is provably a no-op, so the optimizer may elide
/// its event delivery entirely. Returns the previously installed mask.
/// Single-threaded analysis use only, like the register probe.
std::uint32_t* exchange_default_handler_trace(std::uint32_t* mask);

/// Facilities the architecture exposes to event handlers.
class EventContext {
 public:
  virtual ~EventContext() = default;

  virtual sim::Time now() const = 0;
  /// Current pipeline clock cycle (drives register port accounting).
  virtual std::uint64_t cycle() const = 0;
  virtual std::uint16_t num_ports() const = 0;
  virtual std::uint32_t switch_id() const = 0;
  virtual bool link_up(std::uint16_t port) const = 0;

  /// Queue occupancy introspection (bytes), as modern TMs expose to ingress.
  virtual std::size_t queue_bytes(std::uint16_t port,
                                  std::uint8_t qid) const = 0;

  /// Inject a program-built packet into the pipeline as a GeneratedPacket
  /// event (it will be parsed and handled by on_generated). Returns false
  /// on a baseline architecture (no generation support).
  virtual bool inject_packet(net::Packet packet) = 0;

  /// Enqueue a program-built packet directly to (port, qid), bypassing the
  /// ingress pipeline (egress injection). False on baseline architectures.
  virtual bool send_packet(net::Packet packet, std::uint16_t port,
                           std::uint8_t qid = 0) = 0;

  /// Timer facilities (TimerExpiration events). Return 0 on baseline
  /// architectures (and count the refused request).
  virtual TimerId set_periodic_timer(sim::Time period,
                                     std::uint64_t cookie = 0) = 0;
  virtual TimerId set_oneshot_timer(sim::Time delay,
                                    std::uint64_t cookie = 0) = 0;
  virtual bool cancel_timer(TimerId id) = 0;

  /// Packet generator configuration (GeneratedPacket events). Returns 0 on
  /// baseline architectures.
  virtual GeneratorId add_generator(PacketGenerator::Config config) = 0;
  virtual void trigger_generator(GeneratorId id, std::uint64_t n = 1) = 0;
  virtual bool set_generator_template(GeneratorId id, net::Packet tmpl) = 0;

  /// Raise a user event (delivered to on_user via the Event Merger).
  virtual bool raise_user_event(const UserEventData& data) = 0;

  /// Send a message to the control plane (the punt path; the CP agent adds
  /// its channel latency). Available on every architecture.
  virtual void notify_control_plane(const ControlEventData& msg) = 0;
};

/// Convention for carrying the paper's `enq_meta` / `deq_meta` through the
/// PHV user words: ingress writes them; the architecture copies them into
/// the enqueue/dequeue event payloads.
inline constexpr std::size_t kEnqMetaBase = 0;  ///< user[0..3]
inline constexpr std::size_t kDeqMetaBase = 4;  ///< user[4..7]

/// Control-plane opcode convention: when a program needs a timer or packet
/// generator and the architecture refuses (baseline PISA has neither), the
/// handler punts this opcode so the control plane can emulate the facility
/// (args[0] = a program-chosen facility cookie). The static analyzer
/// (src/analysis/) warns about refused facility requests that are not
/// followed by this punt — silent degradation is the bug class §6 of the
/// paper works around by hand.
inline constexpr std::uint32_t kOpFacilityUnavailable = 0xFA11;

/// Base class for data-plane programs. Default handlers do nothing, so a
/// program overrides exactly the events it cares about — the paper's
/// "define custom event handling logic" per event.
class EventProgram {
 public:
  virtual ~EventProgram() = default;

  // -- packet events (PHV-carrying) -----------------------------------------
  virtual void on_ingress(pisa::Phv& phv, EventContext& ctx);
  virtual void on_egress(pisa::Phv& phv, EventContext& ctx);
  virtual void on_recirculate(pisa::Phv& phv, EventContext& ctx);
  virtual void on_generated(pisa::Phv& phv, EventContext& ctx);

  // -- buffer events ----------------------------------------------------------
  virtual void on_enqueue(const tm_::EnqueueRecord& e, EventContext& ctx);
  virtual void on_dequeue(const tm_::DequeueRecord& e, EventContext& ctx);
  virtual void on_overflow(const tm_::DropRecord& e, EventContext& ctx);
  virtual void on_underflow(const tm_::UnderflowRecord& e, EventContext& ctx);

  // -- architectural events ----------------------------------------------------
  virtual void on_transmit(const TransmitRecord& e, EventContext& ctx);
  virtual void on_timer(const TimerEventData& e, EventContext& ctx);
  virtual void on_control(const ControlEventData& e, EventContext& ctx);
  virtual void on_link_status(const LinkStatusEventData& e, EventContext& ctx);
  virtual void on_user(const UserEventData& e, EventContext& ctx);

  /// Called once when the program is attached to a switch — the place to
  /// configure timers and packet generators (P4's control-plane-free
  /// initialization; on baseline architectures those calls fail).
  virtual void on_attach(EventContext& ctx);

  // -- optimizer hooks (src/analysis/optimizer.hpp) ----------------------------

  /// Ask the program to re-realize the named SharedRegister as an
  /// AggregatedRegister (paper §4 side arrays). Called by the optimizer's
  /// aggregation-insertion transform on a *fresh* instance, before any
  /// traffic. Returns true if the register is now aggregated (idempotent);
  /// the default declines every request.
  virtual bool realize_aggregated(std::string_view reg);

  /// Visit every live AggregatedRegister so the execution environment can
  /// register it for idle-cycle drains (EventSwitch::register_aggregated).
  /// Setup-time only — never on the per-event path.
  virtual void visit_aggregated(
      const std::function<void(AggregatedRegister&)>& visit);

  // -- enq/deq metadata helpers (paper §2 microburst.p4 idiom) -----------------
  static void set_enq_meta(pisa::Phv& phv, std::size_t word,
                           std::uint64_t value) {
    phv.user[kEnqMetaBase + (word % 4)] = value;
  }
  static void set_deq_meta(pisa::Phv& phv, std::size_t word,
                           std::uint64_t value) {
    phv.user[kDeqMetaBase + (word % 4)] = value;
  }
};

}  // namespace edp::core
