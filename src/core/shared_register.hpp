// edp::core — the `shared_register` extern (paper §2).
//
// "Our target event-driven architecture will support a new type of extern
// called shared_register to allow event processing threads to share state."
//
// This is the *multi-ported* realization from §4: suitable for lower
// line-rate devices, where the memory can afford one read/write port per
// event processing thread. Every access is attributed to a named thread so
// the model can verify the port budget (number of distinct threads) and
// report per-thread access patterns. State is never stale — accesses take
// effect immediately — which is exactly the semantics the aggregated
// single-ported realization (aggregated_register.hpp) relaxes.
//
// Accesses are additionally reported to the process-wide RegisterProbe
// when one is installed (register_probe.hpp) — that is how the static
// analyzer (src/analysis/) extracts the handler-thread × register access
// matrix without running a simulation.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "core/register_probe.hpp"

namespace edp::core {

template <typename T>
class SharedRegister {
 public:
  /// `ports` = number of simultaneous per-cycle accesses the multi-ported
  /// memory supports; sized to the number of threads that touch it.
  /// A zero-cell register is not realizable (and would make every access
  /// divide by zero), so `size` must be >= 1.
  SharedRegister(std::string name, std::size_t size, int ports)
      : name_(std::move(name)), cells_(size, T{}), ports_(ports) {
    if (size == 0) {
      throw std::invalid_argument("SharedRegister '" + name_ +
                                  "': size must be >= 1");
    }
  }

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }
  int ports() const { return ports_; }

  /// The paper's extern interface: read(index, out).
  void read(std::size_t index, T& out, ThreadId thread,
            std::uint64_t cycle) {
    account(thread, cycle);
    probe(RegisterOp::kRead, thread, index);
    out = cells_[index % cells_.size()];
  }

  void write(std::size_t index, const T& value, ThreadId thread,
             std::uint64_t cycle) {
    account(thread, cycle);
    probe(RegisterOp::kWrite, thread, index);
    cells_[index % cells_.size()] = value;
  }

  /// Atomic read-modify-write (one port use). The probe fires after the
  /// update so integral registers can report the observed old/new values —
  /// the optimizer derives aggregation merge functions from those deltas.
  /// Under an active probe the update function is additionally evaluated at
  /// `before +/- 1` (without committing) to test translation-equivariance:
  /// a pure delta update yields the same delta at every starting value,
  /// while overwrite/saturate updates do not — the value analysis's
  /// merge-commutativity witness. Update functions must therefore be pure
  /// (they already must be: the register may retry them under contention
  /// models), and the extra evaluations only happen on analysis drives.
  template <typename Fn>
  T rmw(std::size_t index, Fn&& fn, ThreadId thread, std::uint64_t cycle) {
    account(thread, cycle);
    T& cell = cells_[index % cells_.size()];
    const T before = cell;
    cell = fn(cell);
    if (active_register_probe() != nullptr) {
      bool linear = true;
      if constexpr (std::is_integral_v<T>) {
        const T d = static_cast<T>(cell - before);
        const T up = static_cast<T>(before + 1);
        const T down = static_cast<T>(before - 1);
        linear = static_cast<T>(fn(up) - up) == d &&
                 static_cast<T>(fn(down) - down) == d;
      }
      probe_rmw(thread, index, before, cell, linear);
    }
    return cell;
  }

  /// Number of cycles in which the port budget was exceeded — i.e. cycles
  /// that would not be realizable on the configured memory. A correctly
  /// provisioned multi-ported register reports 0.
  std::uint64_t overcommitted_cycles() const { return overcommitted_; }

  std::uint64_t accesses(ThreadId thread) const {
    return per_thread_[static_cast<std::size_t>(thread)];
  }
  std::uint64_t total_accesses() const {
    std::uint64_t t = 0;
    for (const auto a : per_thread_) {
      t += a;
    }
    return t;
  }

  /// Modeled memory footprint. Multi-ported memories pay an area cost per
  /// extra port; the resource model uses ports() to scale it.
  std::size_t bytes() const { return cells_.size() * sizeof(T); }

 private:
  void account(ThreadId thread, std::uint64_t cycle) {
    ++per_thread_[static_cast<std::size_t>(thread)];
    if (cycle != current_cycle_) {
      current_cycle_ = cycle;
      used_this_cycle_ = 0;
    }
    ++used_this_cycle_;
    if (used_this_cycle_ == ports_ + 1) {
      ++overcommitted_;  // count the cycle once, on first excess access
    }
  }

  void probe(RegisterOp op, ThreadId thread, std::size_t index) const {
    if (active_register_probe() != nullptr) {
      report_register_access(RegisterAccessEvent{
          this, name_, RegisterRealization::kShared, op, thread, index,
          cells_.size(), ports_});
    }
  }

  void probe_rmw(ThreadId thread, std::size_t index, const T& before,
                 const T& after, bool linear) const {
    RegisterAccessEvent access{this,   name_, RegisterRealization::kShared,
                               RegisterOp::kRmw, thread, index,
                               cells_.size(),    ports_};
    if constexpr (std::is_integral_v<T>) {
      access.has_rmw_values = true;
      access.rmw_old = static_cast<std::int64_t>(before);
      access.rmw_new = static_cast<std::int64_t>(after);
      access.rmw_linear = linear;
    }
    report_register_access(access);
  }

  std::string name_;
  std::vector<T> cells_;
  int ports_;
  std::array<std::uint64_t, kNumThreads> per_thread_{};
  std::uint64_t current_cycle_ = ~0ULL;
  int used_this_cycle_ = 0;
  std::uint64_t overcommitted_ = 0;
};

}  // namespace edp::core
