#include "core/resource_model.hpp"

#include <cmath>

namespace edp::core {
namespace {

// Area-estimation rules of thumb for 7-series fabric:
//  - a 2:1 mux across a W-bit bus costs ~W/2 LUT6 per source pair;
//  - registering a W-bit bus costs W flip-flops per stage;
//  - a FIFO of depth D x width W costs ceil(D*W / 36864) BRAM36 (min 1)
//    plus small control logic;
//  - counters/comparators cost ~1 LUT + 1 FF per bit.
constexpr double kBitsPerBram36 = 36 * 1024;

double brams_for(std::size_t bits) {
  return std::max(1.0, std::ceil(static_cast<double>(bits) / kBitsPerBram36));
}

}  // namespace

EventLogicParams EventLogicParams::from_config(
    const EventSwitchConfig& config) {
  EventLogicParams p;
  p.num_ports = config.num_ports;
  p.fifo_depth = config.merger.event_fifo_depth;
  return p;
}

std::vector<ResourceModel::Item> ResourceModel::event_logic_breakdown(
    const EventLogicParams& p) {
  std::vector<Item> items;
  const auto bus = static_cast<double>(p.event_meta_bus_bits);

  // Event Merger: per-kind insertion muxes onto the metadata bus + the
  // carrier-frame injector FSM + two register stages for timing closure.
  {
    ResourceVector v;
    v.luts = bus / 2.0 * static_cast<double>(p.num_event_fifos) / 2.0  // muxes
             + 250;                                                    // FSM
    v.flip_flops = bus * 2 + 150;
    // Staging buffer for the event metadata of in-flight slots.
    v.bram36 = brams_for(p.event_meta_bus_bits * 64);
    items.push_back({"Event Merger (mux + carrier injector)", v});
  }

  // Per-kind event FIFOs.
  {
    ResourceVector v;
    v.luts = 60.0 * static_cast<double>(p.num_event_fifos);
    v.flip_flops = 40.0 * static_cast<double>(p.num_event_fifos);
    v.bram36 = static_cast<double>(p.num_event_fifos) *
               brams_for(p.fifo_depth * p.fifo_width_bits);
    items.push_back({"Event FIFOs", v});
  }

  // Timer block: tick counter, comparators, wheel memory.
  {
    ResourceVector v;
    v.luts = 400;
    v.flip_flops = 350;
    v.bram36 = static_cast<double>(p.timer_wheel_brams);
    items.push_back({"Timer block", v});
  }

  // Packet generator: template memory + emission control.
  {
    ResourceVector v;
    v.luts = 500;
    v.flip_flops = 400;
    v.bram36 = brams_for(p.pktgen_template_bytes * 8);
    items.push_back({"Packet generator", v});
  }

  // Link status monitors (per port: debounce + edge detect).
  {
    ResourceVector v;
    v.luts = 50.0 * static_cast<double>(p.num_ports);
    v.flip_flops = 25.0 * static_cast<double>(p.num_ports);
    items.push_back({"Link status monitors", v});
  }

  // Widened event metadata carried through the SDNet pipeline: one bus
  // register per stage (FF-dominated; negligible LUTs).
  {
    ResourceVector v;
    v.flip_flops = bus * static_cast<double>(p.pipeline_stages);
    v.luts = 0.1 * v.flip_flops;  // routing/enable logic
    items.push_back({"Pipeline metadata widening", v});
  }

  return items;
}

ResourceVector ResourceModel::event_logic(const EventLogicParams& p) {
  ResourceVector total;
  for (const auto& item : event_logic_breakdown(p)) {
    total = total + item.cost;
  }
  return total;
}

ResourceVector ResourceModel::baseline_reference_switch() {
  // Representative published utilization of the P4->NetFPGA reference
  // switch on the SUME (order-of-magnitude context only).
  return {180'000, 250'000, 600};
}

ResourceVector ResourceModel::percent_of(const ResourceVector& r,
                                         const DeviceBudget& device) {
  return {100.0 * r.luts / device.luts,
          100.0 * r.flip_flops / device.flip_flops,
          100.0 * r.bram36 / device.bram36};
}

}  // namespace edp::core
