// edp::core — the SUME Event Switch (paper §5, Figure 4).
//
// The full event-driven PISA device:
//
//   ports -> Event Merger -> P4 pipeline (parser / program / deparser)
//                -> Traffic Manager (output queues) -> port transmit
//
// with the event sources of Figure 4 feeding the merger: enqueue / dequeue
// / drop from the output queues, the timer block, the configurable packet
// generator, link status monitors, the control plane, and program-raised
// user events. Every program handler runs inside a pipeline slot allocated
// by the merger, so events genuinely consume (spare) pipeline bandwidth —
// the property the paper's line-rate argument rests on.
//
// The same class also models a *baseline PISA architecture* (paper
// Figures 1, §6): constructed with `event_architecture = false` it delivers
// only packet events to the program, refuses timers / generators / user
// events (counting each refused request), and leaves the control-plane
// channel as the only escape hatch — exactly the world the paper's
// comparisons are made against.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <string>
#include <vector>

#include "core/aggregated_register.hpp"
#include "core/dispatch_plan.hpp"
#include "core/event.hpp"
#include "core/event_merger.hpp"
#include "core/event_program.hpp"
#include "core/packet_generator.hpp"
#include "core/timer_wheel.hpp"
#include "pisa/deparser.hpp"
#include "pisa/parser.hpp"
#include "sim/scheduler.hpp"
#include "tm/traffic_manager.hpp"

namespace edp::core {

/// Reserved port numbers in standard metadata.
inline constexpr std::uint16_t kPortGenerated = 0xfffd;  ///< pktgen origin
inline constexpr std::uint16_t kPortCpu = 0xfffe;        ///< CP packet-out
inline constexpr std::uint16_t kPortInvalid = 0xffff;

struct EventSwitchConfig {
  std::string name = "sw0";
  std::uint32_t switch_id = 0;
  /// Owning shard in a runtime::ParallelRuntime partition (0 in sequential
  /// runs). Purely a tracing/diagnostics tag: no switch behavior depends on
  /// it, which is what keeps sharded and sequential runs bit-identical.
  std::uint32_t shard_id = 0;
  std::uint16_t num_ports = 4;
  double port_rate_bps = 10e9;

  MergerConfig merger;  ///< pipeline clock + FIFO depths

  std::uint8_t queues_per_port = 1;
  bool use_pifo = false;
  tm_::QueueLimits queue_limits;
  tm_::SchedulerKind tm_scheduler = tm_::SchedulerKind::kRoundRobin;
  std::vector<std::uint32_t> dwrr_weights;
  tm_::BufferPool::Config buffer;

  sim::Time timer_resolution = sim::Time::micros(1);

  /// false = baseline PISA architecture (packet events only).
  bool event_architecture = true;
  /// PSA-style egress pipeline (on_egress between dequeue and transmit).
  bool egress_pipeline = false;
  /// Loop guard: a packet recirculated more than this many times is
  /// dropped (and counted), as real targets bound recirculation.
  std::uint8_t max_recirculations = 8;
};

/// Aggregate counters of one switch.
struct SwitchCounters {
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t parse_drops = 0;
  std::uint64_t program_drops = 0;   ///< std_meta.drop after ingress
  std::uint64_t bad_port_drops = 0;  ///< egress_port out of range
  std::uint64_t recirculated = 0;
  std::uint64_t recirc_loop_drops = 0;  ///< hit max_recirculations
  std::uint64_t generated = 0;
  std::uint64_t punts = 0;           ///< messages to the control plane
  std::uint64_t refused_ops = 0;     ///< facilities a baseline arch lacks
  /// Events observed at their source (before any delivery filtering).
  std::array<std::uint64_t, kNumEventKinds> observed{};
};

class EventSwitch final : public EventContext {
 public:
  EventSwitch(sim::Scheduler& sched, EventSwitchConfig config);

  // Closures inside the merger/TM capture `this`.
  EventSwitch(const EventSwitch&) = delete;
  EventSwitch& operator=(const EventSwitch&) = delete;

  // ---- wiring ---------------------------------------------------------------

  /// Attach the data-plane program (non-owning; the caller keeps it alive,
  /// typically to read its state after a run). Calls program->on_attach.
  void set_program(EventProgram* program);

  /// Connect port `port`'s transmit side (called with each outgoing packet
  /// after serialization completes).
  void connect_tx(std::uint16_t port, std::function<void(net::Packet)> tx);

  /// Deliver a packet to port `port` (called by the attached link).
  void receive(std::uint16_t port, net::Packet packet);

  /// Link layer notification; raises a LinkStatusChange event.
  void set_link_status(std::uint16_t port, bool up);

  /// Control-plane -> data-plane event (paper Table 1: Control-Plane
  /// Triggered). Available on both architectures? No: baseline PISA has no
  /// event support at all, so in baseline mode the payload is delivered by
  /// *packet-out emulation* only if `as_packet` facilities are used; this
  /// method counts as refused there.
  bool control_event(const ControlEventData& data);

  /// Control-plane packet-out: inject a packet into the ingress pipeline
  /// from the CPU port (available on every architecture — this is how a
  /// baseline CP emulates generation, per §6 Tofino discussion).
  void inject_from_control_plane(net::Packet packet);

  /// Data-plane -> control-plane messages (program punts).
  std::function<void(const ControlEventData&)> on_punt;

  /// Configure multicast group `group_id` (must be nonzero) to replicate
  /// to `ports`. A program selects it via std_meta.mcast_group; each
  /// replica is enqueued independently (own enqueue/dequeue events), as in
  /// a PSA packet replication engine. Excess ports are ignored.
  void set_multicast_group(std::uint16_t group_id,
                           std::vector<std::uint16_t> ports);

  /// Register program state for idle-cycle aggregation drains (§4).
  void register_aggregated(AggregatedRegister& reg);

  /// Install an optimizer-emitted dispatch plan (paper §4, Fig. 3: the
  /// merged physical pipeline). Fused TM events run their handler inline
  /// at the observation point; suppressed kinds skip Event construction
  /// and delivery. The default plan (all kQueued) is the seed behavior.
  /// Call after set_program, before traffic.
  void set_dispatch_plan(const DispatchPlan& plan);
  const DispatchPlan& dispatch_plan() const { return plan_; }

  /// Apply all pending aggregated deltas (end-of-run settling for tests).
  void settle();

  // ---- EventContext (facilities handlers may use) ----------------------------

  sim::Time now() const override { return sched_.now(); }
  std::uint64_t cycle() const override { return merger_.current_cycle(); }
  std::uint16_t num_ports() const override { return config_.num_ports; }
  std::uint32_t switch_id() const override { return config_.switch_id; }
  bool link_up(std::uint16_t port) const override;
  std::size_t queue_bytes(std::uint16_t port,
                          std::uint8_t qid) const override;
  bool inject_packet(net::Packet packet) override;
  bool send_packet(net::Packet packet, std::uint16_t port,
                   std::uint8_t qid) override;
  TimerId set_periodic_timer(sim::Time period, std::uint64_t cookie) override;
  TimerId set_oneshot_timer(sim::Time delay, std::uint64_t cookie) override;
  bool cancel_timer(TimerId id) override;
  GeneratorId add_generator(PacketGenerator::Config config) override;
  void trigger_generator(GeneratorId id, std::uint64_t n) override;
  bool set_generator_template(GeneratorId id, net::Packet tmpl) override;
  bool raise_user_event(const UserEventData& data) override;
  void notify_control_plane(const ControlEventData& msg) override;

  // ---- event delivery policy --------------------------------------------------

  /// Enable/disable delivery of one event kind to the program. Defaults
  /// match the SUME prototype: enqueue, dequeue, overflow, timer, link
  /// status, control and user events on; transmit and underflow off (they
  /// fire per packet / per poll and are opt-in).
  void enable_event(EventKind kind, bool enabled);
  bool event_enabled(EventKind kind) const;

  // ---- introspection ----------------------------------------------------------

  const EventSwitchConfig& config() const { return config_; }
  std::uint32_t shard_id() const { return config_.shard_id; }
  const SwitchCounters& counters() const { return counters_; }
  const EventMerger& merger() const { return merger_; }
  tm_::TrafficManager& traffic_manager() { return tm_; }
  const tm_::TrafficManager& traffic_manager() const { return tm_; }
  pisa::Parser& parser() { return parser_; }
  const TimerBlock& timer_block() const { return timers_; }

  /// Total pipeline cycles elapsed since the first slot (for utilization).
  std::uint64_t cycles_elapsed() const;

  /// Multi-line human-readable statistics dump (counters, merger stats,
  /// per-kind event delivery) for debugging and example output.
  std::string describe() const;

 private:
  struct PortState {
    bool link_up = true;
    bool busy = false;
    std::function<void(net::Packet)> tx;
  };

  /// One pipeline slot: parse/dispatch the packet, deliver events, route.
  void process_slot(SlotWork&& work);
  void dispatch_event(const Event& ev);
  void route(pisa::Phv&& phv);
  void try_transmit(std::uint16_t port);
  void finish_transmit(std::uint16_t port, std::uint32_t bytes);
  void observe(EventKind kind) {
    ++counters_.observed[static_cast<std::size_t>(kind)];
  }
  /// Submit to the merger if this kind is enabled on this architecture.
  void submit_if_enabled(Event ev);

  sim::Scheduler& sched_;
  EventSwitchConfig config_;
  std::unordered_map<std::uint16_t, std::vector<std::uint16_t>> mcast_;
  EventMerger merger_;
  tm_::TrafficManager tm_;
  TimerBlock timers_;
  /// Same-wake timer events staged for one merger submit_events call
  /// (capacity retained across wakes).
  std::vector<Event> timer_burst_;
  PacketGenerator pktgen_;
  pisa::Parser parser_;
  pisa::Deparser deparser_;
  EventProgram* program_ = nullptr;
  std::vector<PortState> ports_;
  std::vector<AggregatedRegister*> aggregated_;
  DispatchPlan plan_;
  std::array<bool, kNumEventKinds> deliver_{};
  SwitchCounters counters_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t first_slot_cycle_ = 0;
  bool saw_slot_ = false;
};

}  // namespace edp::core
