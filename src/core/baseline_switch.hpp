// edp::core — baseline PISA comparator (paper Figure 1, §6).
//
// `BaselineSwitch` is a convenience facade over EventSwitch configured as a
// baseline PISA architecture: the program sees packet events only, and the
// only ways to approximate the paper's events are the two escape hatches
// modern targets actually offer (§6, Tofino):
//
//   * control-plane packet-out (`inject_from_control_plane`) — how a CP
//     emulates a packet generator / timers, paying the CP channel latency;
//   * recirculation — the program may set std_meta.recirculate to re-enter
//     the ingress pipeline.
//
// Everything else (timers, pktgen, user events, enqueue/dequeue delivery)
// is refused and counted, so benches can report exactly what the baseline
// could not do.
#pragma once

#include "core/event_switch.hpp"

namespace edp::core {

/// Build a baseline-PISA configuration from an event-switch configuration
/// (same ports/rates/queues; event facilities disabled, PSA-style egress
/// pipeline enabled since the PSA has one).
EventSwitchConfig make_baseline_config(EventSwitchConfig config);

class BaselineSwitch {
 public:
  BaselineSwitch(sim::Scheduler& sched, EventSwitchConfig config)
      : sw_(sched, make_baseline_config(std::move(config))) {}

  /// The underlying device (all wiring goes through it).
  EventSwitch& device() { return sw_; }
  const EventSwitch& device() const { return sw_; }

  // Facade for the facilities a baseline architecture really has.
  void set_program(EventProgram* program) { sw_.set_program(program); }
  void connect_tx(std::uint16_t port, std::function<void(net::Packet)> tx) {
    sw_.connect_tx(port, std::move(tx));
  }
  void receive(std::uint16_t port, net::Packet packet) {
    sw_.receive(port, std::move(packet));
  }
  void inject_from_control_plane(net::Packet packet) {
    sw_.inject_from_control_plane(std::move(packet));
  }
  void set_link_status(std::uint16_t port, bool up) {
    // The hardware still knows the link state (the MAC does); the *event*
    // is simply never delivered to the program on a baseline device.
    sw_.set_link_status(port, up);
  }

  const SwitchCounters& counters() const { return sw_.counters(); }

 private:
  EventSwitch sw_;
};

}  // namespace edp::core
