// edp::core — the Event Merger (paper §5, Figure 4).
//
// "The Event Merger is responsible for gathering all new events and placing
// them into metadata that flows through the pipeline. If there are no
// ingress packets for the metadata to piggyback onto, the Event Merger
// generates an empty packet, attaches the event metadata and injects it
// into the P4 pipeline."
//
// The model is cycle-slotted: the P4 pipeline accepts one PHV per clock
// cycle. Each slot carries either an ingress packet (with up to one pending
// event of each kind piggybacked as metadata — the SUME metadata bus has a
// dedicated field per event type) or, when no packet is waiting, an empty
// carrier frame bearing the pending event metadata. Event FIFOs are
// bounded; overflow drops are counted per kind, which is precisely the
// capacity pressure §4/§5 discuss.
//
// The merger is event-driven for efficiency: slots are only simulated when
// there is work, and slot times stay aligned to the clock grid, so cycle
// indices are exact.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/event.hpp"
#include "net/packet.hpp"
#include "sim/object_pool.hpp"
#include "sim/ring_queue.hpp"
#include "sim/scheduler.hpp"

namespace edp::core {

/// How a packet entered the pipeline.
enum class PacketOrigin : std::uint8_t {
  kIngress,       ///< arrived on a front-panel port
  kRecirculated,  ///< resubmitted by the program
  kGenerated,     ///< produced by the packet generator
};

struct MergerConfig {
  sim::Time cycle_time = sim::Time::nanos(5);  ///< 200 MHz pipeline
  /// Sub-cycle phase of this switch's clock: slot k runs at
  /// `k * cycle_time + clock_phase`. Switches are independent clock
  /// domains; giving each a distinct phase (as unsynchronized hardware
  /// oscillators have) keeps two switches from ever processing events at
  /// the same picosecond — the one ordering case the parallel runtime's
  /// determinism contract excludes (docs/RUNTIME.md). Must be
  /// non-negative and smaller than cycle_time.
  sim::Time clock_phase = sim::Time::zero();
  std::size_t packet_fifo_depth = 256;         ///< ingress backlog (packets)
  std::size_t event_fifo_depth = 64;           ///< per event kind
  /// Events of one kind attachable to a single PHV (metadata bus width).
  std::size_t events_per_kind_per_slot = 1;
  /// Total events per slot across all kinds (the shared metadata budget).
  /// Default: no extra cap beyond the per-kind fields. When slots are
  /// scarce this budget is what the priority policy arbitrates.
  std::size_t events_per_slot = kNumEventKinds;
  /// Paper §4 future work: "how memory accesses are scheduled, depending
  /// on which events are the most important and urgent, and whether
  /// priorities are assigned by the programmer, the compiler, or the
  /// hardware." Here the *programmer* assigns a priority per event kind
  /// (higher = more urgent); under a constrained events_per_slot budget,
  /// pending events are granted metadata space in priority order.
  /// All-equal priorities reproduce the plain per-kind round robin.
  std::array<int, kNumEventKinds> priority{};
};

/// The work assigned to one pipeline slot.
struct SlotWork {
  std::uint64_t cycle = 0;          ///< absolute clock cycle index
  sim::Time time = sim::Time::zero();
  std::optional<net::Packet> packet;
  PacketOrigin origin = PacketOrigin::kIngress;
  std::vector<Event> events;        ///< piggybacked / carrier-borne events
  bool carrier = false;             ///< true when events ride an empty frame
};

/// Per-event-kind delivery statistics.
struct EventKindStats {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;          ///< FIFO overflow
  sim::Time wait_sum = sim::Time::zero();
  sim::Time wait_max = sim::Time::zero();

  sim::Time wait_mean() const {
    return delivered == 0 ? sim::Time::zero()
                          : sim::Time(wait_sum.ps() /
                                      static_cast<std::int64_t>(delivered));
  }
};

class EventMerger {
 public:
  EventMerger(sim::Scheduler& sched, MergerConfig config);

  /// Slot consumer (the EventSwitch's pipeline dispatch).
  std::function<void(SlotWork&&)> on_slot;  // hotpath-ok: installed once, invoked in place

  /// Submit a packet for pipeline processing. False (and counted) if the
  /// ingress backlog is full.
  bool submit_packet(net::Packet packet, PacketOrigin origin);

  /// Submit a non-packet event. False (and counted) if that kind's FIFO is
  /// full — a genuinely dropped event, as in hardware.
  bool submit_event(Event event);

  /// Submit a burst of events with a single slot-pump at the end instead of
  /// one per event (the TimerBlock's coalesced same-tick expirations arrive
  /// here). Per-event FIFO admission is identical to submit_event — and so
  /// is the scheduled slot, since intermediate pumps are no-ops once the
  /// first event has a slot pending. Returns the number accepted.
  std::size_t submit_events(Event* events, std::size_t n);

  /// Return a consumed slot's event vector to the merger's pool so the next
  /// slot reuses its capacity instead of allocating. Consumers call this
  /// once they are done with the SlotWork they received via on_slot.
  void recycle(SlotWork&& work) {
    event_vectors_.release(std::move(work.events));
  }

  /// Allocator-traffic statistics for the slot event-vector pool.
  const sim::PoolStats& event_vector_pool_stats() const {
    return event_vectors_.stats();
  }

  // ---- cycle bookkeeping ----------------------------------------------------

  /// Clock cycle index corresponding to `t` on this merger's grid.
  std::uint64_t cycle_at(sim::Time t) const {
    const std::int64_t rel = t.ps() - config_.clock_phase.ps();
    return rel <= 0 ? 0
                    : static_cast<std::uint64_t>(rel /
                                                 config_.cycle_time.ps());
  }
  std::uint64_t current_cycle() const { return cycle_at(sched_.now()); }

  /// Idle cycles between the previous slot and the most recent one (spare
  /// pipeline bandwidth the switch may use for aggregation drains).
  std::uint64_t last_gap_cycles() const { return last_gap_cycles_; }

  // ---- statistics -----------------------------------------------------------

  const EventKindStats& kind_stats(EventKind kind) const {
    return stats_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t slots_total() const { return slots_total_; }
  std::uint64_t slots_with_packet() const { return slots_with_packet_; }
  std::uint64_t slots_carrier() const { return slots_carrier_; }
  std::uint64_t events_piggybacked() const { return events_piggybacked_; }
  std::uint64_t events_on_carrier() const { return events_on_carrier_; }
  std::uint64_t packet_backlog_drops() const { return packet_drops_; }
  std::size_t packet_backlog() const { return packets_.size(); }
  std::size_t event_backlog() const;

  const MergerConfig& config() const { return config_; }

 private:
  struct PendingPacket {
    net::Packet packet;
    PacketOrigin origin;
  };

  /// Ensure a slot callback is scheduled if there is work.
  void pump();
  void run_slot();
  bool has_work() const;

  /// Push one event into its kind FIFO (stats + overflow drop); the caller
  /// is responsible for pumping.
  bool admit_event(Event&& event);

  sim::Scheduler& sched_;
  MergerConfig config_;
  /// Kind indices sorted by programmer-assigned priority (stable by kind
  /// index on ties) — fixed at construction, consulted every slot.
  std::array<std::size_t, kNumEventKinds> order_{};
  sim::RingQueue<PendingPacket> packets_;
  std::array<sim::RingQueue<Event>, kNumEventKinds> fifos_;
  /// Recycled SlotWork::events vectors (filled by run_slot, returned by the
  /// consumer via recycle()); capacity is retained across slots.
  sim::ObjectPool<std::vector<Event>> event_vectors_;
  std::array<EventKindStats, kNumEventKinds> stats_{};

  sim::Time next_slot_time_ = sim::Time::zero();
  std::uint64_t last_slot_cycle_ = 0;
  bool first_slot_done_ = false;
  std::uint64_t last_gap_cycles_ = 0;
  bool slot_scheduled_ = false;

  std::uint64_t slots_total_ = 0;
  std::uint64_t slots_with_packet_ = 0;
  std::uint64_t slots_carrier_ = 0;
  std::uint64_t events_piggybacked_ = 0;
  std::uint64_t events_on_carrier_ = 0;
  std::uint64_t packet_drops_ = 0;
};

}  // namespace edp::core
