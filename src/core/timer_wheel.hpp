// edp::core — timer events (paper Table 1: Timer Expiration).
//
// Two layers:
//  * `TimingWheel` — a hierarchical timing wheel, the data structure a
//    hardware timer block implements: O(1) insert/cancel, expiry by slot
//    scan, timestamps quantized to the wheel resolution.
//  * `TimerBlock` — the switch-facing component: periodic and one-shot
//    timers whose expirations become TimerEventData records delivered to
//    the Event Merger. Driven lazily off the discrete-event scheduler (it
//    only wakes at the wheel's next expiry).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.hpp"
#include "sim/scheduler.hpp"

namespace edp::core {

using TimerId = std::uint32_t;

/// Hierarchical timing wheel: `kLevels` levels of `kSlots` slots each.
/// Level k covers kSlots^k..kSlots^(k+1) ticks of delay; entries cascade
/// down as time advances. All times are in integer ticks of the wheel
/// resolution (the owner converts from sim::Time).
class TimingWheel {
 public:
  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kSlots = 256;  ///< per level; power of two

  struct Expired {
    TimerId id = 0;
    std::uint64_t cookie = 0;
    std::uint64_t fire_tick = 0;  ///< tick it was scheduled for
  };

  TimingWheel() = default;

  std::uint64_t now_tick() const { return now_; }

  /// Schedule `cookie` at absolute tick `fire_tick` (clamped to now+1 if in
  /// the past). Returns the timer id.
  TimerId add(std::uint64_t fire_tick, std::uint64_t cookie);

  /// Cancel a pending timer; false if unknown/already fired.
  bool cancel(TimerId id);

  /// Advance to `tick`, appending expired entries (in fire order) to `out`.
  void advance_to(std::uint64_t tick, std::vector<Expired>& out);

  /// A safe tick to jump to: the earliest tick at which something *may*
  /// expire (exact within level 0; conservative slot-boundary estimates at
  /// higher levels — advancing there cascades and the next call refines).
  /// nullopt if the wheel is empty.
  std::optional<std::uint64_t> next_expiry_hint() const;

  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    std::uint64_t fire_tick;
    TimerId id;
    std::uint64_t cookie;
  };

  void place(Entry e);
  /// Level that covers a delay of `delta` ticks.
  static std::size_t level_for(std::uint64_t delta);

  std::uint64_t now_ = 0;
  std::vector<Entry> slots_[kLevels][kSlots];
  std::unordered_set<TimerId> cancelled_;
  std::size_t live_ = 0;
  TimerId next_id_ = 1;
};

/// The switch timer block: converts sim time to wheel ticks, supports
/// periodic + one-shot timers, fires `on_expire`.
class TimerBlock {
 public:
  TimerBlock(sim::Scheduler& sched, sim::Time resolution);

  /// Fired for every expiration (periodic timers re-arm automatically).
  std::function<void(const TimerEventData&)> on_expire;  // hotpath-ok: installed once

  /// Batched alternative: one call per wake carrying every expiration of
  /// that wake in fire order (same records, same order as on_expire would
  /// see). When set it takes precedence over on_expire. Delivery happens
  /// after the whole burst's bookkeeping (periodic re-arms, one-shot
  /// removal), so handlers must not assume they can cancel a timer that
  /// expired in the same burst — the switch's merger hand-off never does.
  std::function<void(const TimerEventData*, std::size_t)> on_expire_batch;  // hotpath-ok: installed once

  /// Periodic timer with program cookie; first fire one period from now.
  TimerId set_periodic(sim::Time period, std::uint64_t cookie = 0);

  /// One-shot timer.
  TimerId set_oneshot(sim::Time delay, std::uint64_t cookie = 0);

  bool cancel(TimerId id);

  sim::Time resolution() const { return resolution_; }
  std::size_t pending() const { return wheel_.pending(); }
  std::uint64_t fired() const { return fired_; }

 private:
  std::uint64_t to_tick(sim::Time t) const {
    return static_cast<std::uint64_t>(t.ps() / resolution_.ps());
  }
  /// For scheduling targets: round UP so timers never fire early.
  std::uint64_t to_tick_ceil(sim::Time t) const {
    return static_cast<std::uint64_t>(
        (t.ps() + resolution_.ps() - 1) / resolution_.ps());
  }
  sim::Time from_tick(std::uint64_t tick) const {
    return sim::Time(static_cast<std::int64_t>(tick) * resolution_.ps());
  }

  /// (Re)arm the sim-scheduler wakeup at the wheel's next expiry.
  void arm();
  void wake();

  sim::Scheduler& sched_;
  sim::Time resolution_;
  TimingWheel wheel_;
  /// Public timer ids are stable across periodic re-arms; each maps to the
  /// currently pending wheel entry (whose cookie is the public id).
  struct TimerRec {
    std::uint64_t cookie = 0;
    sim::Time period = sim::Time::zero();  ///< zero => one-shot
    TimerId wheel_id = 0;
  };
  std::unordered_map<TimerId, TimerRec> timers_;
  TimerId next_pub_id_ = 1;
  sim::EventId wakeup_ = 0;
  bool wakeup_armed_ = false;
  std::uint64_t fired_ = 0;
  /// Reused by wake() so per-wake expiry collection does not allocate.
  std::vector<TimingWheel::Expired> expired_scratch_;
  /// Coalesced same-wake delivery burst for on_expire_batch (capacity
  /// retained across wakes).
  std::vector<TimerEventData> delivery_scratch_;
};

}  // namespace edp::core
