// edp::core — FPGA resource model (paper §5, Table 3).
//
// The paper reports the hardware cost of event support on the NetFPGA SUME
// (Xilinx Virtex-7 XC7V690T): +0.5% LUTs, +0.4% flip-flops, +2.0% BRAM of
// the device totals. We cannot synthesize here, so this model counts the
// same structures the prototype added — the Event Merger's metadata mux
// and carrier injector, per-kind event FIFOs, the timer block, the packet
// generator's template memory, link monitors, and the widened event
// metadata bus carried through the SDNet pipeline — using standard
// area-estimation rules (LUTs/FFs per datapath bit, BRAM36 blocks per
// memory). Parameters default to the SUME Event Switch architecture and
// may be derived from an EventSwitchConfig, so the printed Table 3 tracks
// the simulated design. This substitution is documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "core/event_switch.hpp"

namespace edp::core {

/// An amount of FPGA fabric.
struct ResourceVector {
  double luts = 0;
  double flip_flops = 0;
  double bram36 = 0;

  ResourceVector operator+(const ResourceVector& o) const {
    return {luts + o.luts, flip_flops + o.flip_flops, bram36 + o.bram36};
  }
};

/// Whole-device budgets.
struct DeviceBudget {
  std::string name;
  double luts = 0;
  double flip_flops = 0;
  double bram36 = 0;

  /// The NetFPGA SUME FPGA.
  static DeviceBudget virtex7_690t() {
    return {"Virtex-7 XC7V690T", 433'200, 866'400, 1'470};
  }
};

/// Structural parameters of the event logic.
struct EventLogicParams {
  /// Width of the event metadata bus the merger inserts into the PHV.
  std::size_t event_meta_bus_bits = 256;
  /// SDNet pipeline depth the widened metadata is carried through.
  std::size_t pipeline_stages = 8;
  /// Per-kind event FIFOs (enq, deq, drop, timer, link, control in SUME).
  std::size_t num_event_fifos = 6;
  std::size_t fifo_depth = 512;
  std::size_t fifo_width_bits = 192;
  /// Packet generator template memory.
  std::size_t pktgen_template_bytes = 32 * 1024;
  std::size_t num_ports = 4;
  /// Timer block state (wheel slots etc.).
  std::size_t timer_wheel_brams = 2;

  /// Derive the structural parameters from a simulated configuration.
  static EventLogicParams from_config(const EventSwitchConfig& config);
};

class ResourceModel {
 public:
  /// Fabric consumed by the event support logic alone (what Table 3 calls
  /// "the cost of adding support for events").
  static ResourceVector event_logic(const EventLogicParams& p);

  /// Itemized breakdown (component name -> cost), for the bench printout.
  struct Item {
    std::string component;
    ResourceVector cost;
  };
  static std::vector<Item> event_logic_breakdown(const EventLogicParams& p);

  /// A representative baseline P4-NetFPGA reference switch (for context in
  /// reports; Table 3 itself is the *increase*, relative to device totals).
  static ResourceVector baseline_reference_switch();

  /// Express `r` as percent of the device budget.
  static ResourceVector percent_of(const ResourceVector& r,
                                   const DeviceBudget& device);
};

}  // namespace edp::core
