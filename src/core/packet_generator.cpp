#include "core/packet_generator.hpp"

#include <cassert>

namespace edp::core {

GeneratorId PacketGenerator::add(Config config) {
  assert(config.period > sim::Time::zero() || config.count > 0);
  const GeneratorId id = next_id_++;
  Gen g{std::move(config), 0, 0};
  const sim::Time first_delay =
      g.config.start_immediately ? sim::Time::zero() : g.config.period;
  auto [it, inserted] = gens_.emplace(id, std::move(g));
  assert(inserted);
  it->second.pending = sched_.after(first_delay, [this, id] { fire(id); });
  return id;
}

void PacketGenerator::fire(GeneratorId id) {
  const auto it = gens_.find(id);
  if (it == gens_.end()) {
    return;  // removed while the callback was in flight
  }
  Gen& g = it->second;
  g.pending = 0;
  emit(g, id);
  if (g.config.count != 0 && g.emitted >= g.config.count) {
    gens_.erase(it);
    return;
  }
  if (g.config.period > sim::Time::zero()) {
    g.pending = sched_.after(g.config.period, [this, id] { fire(id); });
  }
}

void PacketGenerator::emit(Gen& g, GeneratorId id) {
  ++g.emitted;
  ++generated_;
  if (on_generate) {
    on_generate(id, g.config.packet_template);  // copy of the template
  }
}

void PacketGenerator::trigger(GeneratorId id, std::uint64_t n) {
  const auto it = gens_.find(id);
  if (it == gens_.end()) {
    return;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    emit(it->second, id);
  }
}

bool PacketGenerator::remove(GeneratorId id) {
  const auto it = gens_.find(id);
  if (it == gens_.end()) {
    return false;
  }
  if (it->second.pending != 0) {
    sched_.cancel(it->second.pending);
  }
  gens_.erase(it);
  return true;
}

bool PacketGenerator::set_template(GeneratorId id,
                                   net::Packet packet_template) {
  const auto it = gens_.find(id);
  if (it == gens_.end()) {
    return false;
  }
  it->second.config.packet_template = std::move(packet_template);
  return true;
}

std::size_t PacketGenerator::template_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, g] : gens_) {
    total += g.config.packet_template.size();
  }
  return total;
}

}  // namespace edp::core
