// edp::core — the configurable packet generator (paper §5, Figure 4).
//
// Holds packet templates and emits clones on a configured period (or as a
// burst on demand). Generated packets enter the pipeline as
// GeneratedPacket events — this is the facility HULA-style probes and
// liveness echoes use to originate packets entirely in the data plane.
// (On Tofino, §6, the control plane must configure an equivalent
// fixed-function generator; on baseline PISA there is none.)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace edp::core {

using GeneratorId = std::uint32_t;

class PacketGenerator {
 public:
  struct Config {
    net::Packet packet_template;             ///< cloned for each emission
    sim::Time period = sim::Time::micros(100);
    std::uint64_t count = 0;                 ///< 0 = unlimited
    bool start_immediately = true;           ///< else first fire after period
  };

  explicit PacketGenerator(sim::Scheduler& sched) : sched_(sched) {}

  /// Emission callback: (generator id, cloned template). The EventSwitch
  /// routes these into the pipeline as GeneratedPacket events.
  std::function<void(GeneratorId, net::Packet)> on_generate;

  /// Install and start a periodic generator.
  GeneratorId add(Config config);

  /// Emit `n` clones of generator `id`'s template right now (single-shot
  /// burst; used by event handlers that need to send a packet *now*).
  void trigger(GeneratorId id, std::uint64_t n = 1);

  /// Stop and remove a generator.
  bool remove(GeneratorId id);

  /// Replace the template of a running generator (e.g. update a probe's
  /// fields); takes effect on the next emission.
  bool set_template(GeneratorId id, net::Packet packet_template);

  std::uint64_t generated() const { return generated_; }
  std::size_t active() const { return gens_.size(); }

  /// Modeled template buffer footprint (for the resource model).
  std::size_t template_bytes() const;

 private:
  struct Gen {
    Config config;
    std::uint64_t emitted = 0;
    sim::EventId pending = 0;
  };

  void fire(GeneratorId id);
  void emit(Gen& g, GeneratorId id);

  sim::Scheduler& sched_;
  std::unordered_map<GeneratorId, Gen> gens_;
  GeneratorId next_id_ = 1;
  std::uint64_t generated_ = 0;
};

}  // namespace edp::core
