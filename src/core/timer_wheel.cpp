#include "core/timer_wheel.hpp"

#include <algorithm>
#include <cassert>

namespace edp::core {

// ---- TimingWheel ------------------------------------------------------------

std::size_t TimingWheel::level_for(std::uint64_t delta) {
  std::uint64_t span = kSlots;
  for (std::size_t level = 0; level < kLevels - 1; ++level) {
    if (delta < span) {
      return level;
    }
    span *= kSlots;
  }
  return kLevels - 1;
}

void TimingWheel::place(Entry e) {
  const std::uint64_t delta = e.fire_tick > now_ ? e.fire_tick - now_ : 1;
  const std::size_t level = level_for(delta);
  // Slot index within the level: the fire tick divided by the level's slot
  // width, modulo the wheel size.
  std::uint64_t width = 1;
  for (std::size_t l = 0; l < level; ++l) {
    width *= kSlots;
  }
  const std::size_t slot =
      static_cast<std::size_t>((e.fire_tick / width) % kSlots);
  slots_[level][slot].push_back(e);
}

TimerId TimingWheel::add(std::uint64_t fire_tick, std::uint64_t cookie) {
  if (fire_tick <= now_) {
    fire_tick = now_ + 1;
  }
  const TimerId id = next_id_++;
  place(Entry{fire_tick, id, cookie});
  ++live_;
  return id;
}

bool TimingWheel::cancel(TimerId id) {
  if (id == 0 || id >= next_id_) {
    return false;
  }
  if (cancelled_.insert(id).second) {
    // live_ is decremented when the entry is actually discarded during
    // advance; pending() should reflect the cancel immediately though.
    --live_;
    return true;
  }
  return false;
}

void TimingWheel::advance_to(std::uint64_t tick, std::vector<Expired>& out) {
  while (now_ < tick) {
    ++now_;
    const std::size_t slot0 = static_cast<std::size_t>(now_ % kSlots);
    // Cascade: when a level-0 lap completes, redistribute the next slot of
    // each coarser level whose boundary we crossed.
    if (slot0 == 0) {
      std::uint64_t width = kSlots;
      for (std::size_t level = 1; level < kLevels; ++level) {
        const std::size_t slot =
            static_cast<std::size_t>((now_ / width) % kSlots);
        auto entries = std::move(slots_[level][slot]);
        slots_[level][slot].clear();
        for (auto& e : entries) {
          if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
          }
          place(e);
        }
        if (slot != 0) {
          break;  // only cascade levels whose boundary was crossed
        }
        width *= kSlots;
      }
    }
    auto& bucket = slots_[0][slot0];
    if (bucket.empty()) {
      continue;
    }
    // Entries in a level-0 slot may belong to future laps of the wheel.
    auto keep_end = std::partition(
        bucket.begin(), bucket.end(),
        [this](const Entry& e) { return e.fire_tick > now_; });
    for (auto it = keep_end; it != bucket.end(); ++it) {
      if (auto c = cancelled_.find(it->id); c != cancelled_.end()) {
        cancelled_.erase(c);
        continue;
      }
      out.push_back(Expired{it->id, it->cookie, it->fire_tick});
      --live_;
    }
    bucket.erase(keep_end, bucket.end());
  }
}

std::optional<std::uint64_t> TimingWheel::next_expiry_hint() const {
  if (live_ == 0) {
    return std::nullopt;
  }
  // Exact scan of level 0 (one lap ahead).
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 1; i <= kSlots; ++i) {
    const std::uint64_t t = now_ + i;
    const auto& bucket = slots_[0][static_cast<std::size_t>(t % kSlots)];
    for (const auto& e : bucket) {
      if (e.fire_tick == t && !cancelled_.contains(e.id)) {
        best = std::min(best, t);
      }
    }
    if (best != UINT64_MAX) {
      return best;
    }
  }
  // Nothing in level 0's next lap: conservative hint = next level-0 lap
  // boundary, where cascading will refine the estimate.
  return (now_ / kSlots + 1) * kSlots;
}

// ---- TimerBlock -------------------------------------------------------------

TimerBlock::TimerBlock(sim::Scheduler& sched, sim::Time resolution)
    : sched_(sched), resolution_(resolution) {
  assert(resolution_ > sim::Time::zero());
}

TimerId TimerBlock::set_periodic(sim::Time period, std::uint64_t cookie) {
  assert(period >= resolution_ && "period below timer resolution");
  const TimerId pub = next_pub_id_++;
  const TimerId wheel_id = wheel_.add(to_tick_ceil(sched_.now() + period), pub);
  timers_.emplace(pub, TimerRec{cookie, period, wheel_id});
  arm();
  return pub;
}

TimerId TimerBlock::set_oneshot(sim::Time delay, std::uint64_t cookie) {
  const TimerId pub = next_pub_id_++;
  const TimerId wheel_id = wheel_.add(to_tick_ceil(sched_.now() + delay), pub);
  timers_.emplace(pub, TimerRec{cookie, sim::Time::zero(), wheel_id});
  arm();
  return pub;
}

bool TimerBlock::cancel(TimerId id) {
  const auto it = timers_.find(id);
  if (it == timers_.end()) {
    return false;
  }
  wheel_.cancel(it->second.wheel_id);
  timers_.erase(it);
  return true;
}

void TimerBlock::arm() {
  const auto hint = wheel_.next_expiry_hint();
  if (!hint) {
    if (wakeup_armed_) {
      sched_.cancel(wakeup_);
      wakeup_armed_ = false;
    }
    return;
  }
  const sim::Time when = from_tick(*hint);
  if (wakeup_armed_) {
    sched_.cancel(wakeup_);
  }
  const sim::Time target = std::max(when, sched_.now());
  wakeup_ = sched_.at(target, [this] { wake(); });
  wakeup_armed_ = true;
}

void TimerBlock::wake() {
  wakeup_armed_ = false;
  std::vector<TimingWheel::Expired>& expired = expired_scratch_;
  expired.clear();  // capacity retained: wakes allocate only at high-water
  wheel_.advance_to(to_tick(sched_.now()), expired);
  delivery_scratch_.clear();
  for (const auto& e : expired) {
    // Wheel cookies hold the public id; resolve to the timer record.
    const TimerId pub = static_cast<TimerId>(e.cookie);
    const auto it = timers_.find(pub);
    if (it == timers_.end()) {
      continue;  // cancelled between expiry and delivery
    }
    ++fired_;
    TimerEventData data;
    data.timer_id = pub;
    data.cookie = it->second.cookie;
    data.scheduled_for = from_tick(e.fire_tick);
    data.fired_at = sched_.now();
    if (it->second.period > sim::Time::zero()) {
      // Periodic: re-arm from the scheduled time (not the fire time) so
      // the long-run rate is exactly 1/period despite quantization.
      it->second.wheel_id =
          wheel_.add(to_tick_ceil(data.scheduled_for + it->second.period), pub);
    } else {
      timers_.erase(it);
    }
    if (on_expire_batch) {
      delivery_scratch_.push_back(data);
    } else if (on_expire) {
      on_expire(data);
    }
  }
  // Coalesced hand-off: same-wake expirations reach the consumer as one
  // burst (one merger submit_events call on the switch) instead of one
  // delivery per timer. Records and their order are exactly what the
  // per-entry path produces — the regression tests pin this down.
  if (on_expire_batch && !delivery_scratch_.empty()) {
    on_expire_batch(delivery_scratch_.data(), delivery_scratch_.size());
  }
  arm();
}

}  // namespace edp::core
