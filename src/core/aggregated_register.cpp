#include "core/aggregated_register.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace edp::core {
namespace {

/// A zero-cell array would make every `idx % size` divide by zero.
std::size_t checked_size(std::size_t size, const std::string& name) {
  if (size == 0) {
    throw std::invalid_argument("AggregatedRegister '" + name +
                                "': size must be >= 1");
  }
  return size;
}

}  // namespace

AggregatedRegister::AggregatedRegister(std::string name, std::size_t size,
                                       DrainPolicy policy)
    : name_(std::move(name)),
      policy_(policy),
      main_(name_ + ".main", checked_size(size, name_), /*ports=*/1),
      enq_(size),
      deq_(size) {}

void AggregatedRegister::probe(RegisterRealization realization, RegisterOp op,
                               std::size_t idx) const {
  if (active_register_probe() != nullptr) {
    // The aggregation arrays are single-ported by construction; the caller
    // does not declare a thread — the realization already fixes which
    // logical pipeline owns the access.
    report_register_access(RegisterAccessEvent{this, name_, realization, op,
                                               ThreadId::kOther, idx,
                                               main_.size(), /*ports=*/1});
  }
}

void AggregatedRegister::probe_rmw(RegisterRealization realization,
                                   std::size_t idx, std::int64_t old_v,
                                   std::int64_t new_v) const {
  if (active_register_probe() == nullptr) {
    return;
  }
  RegisterAccessEvent access{this, name_, realization, RegisterOp::kRmw,
                             ThreadId::kOther, idx, main_.size(),
                             /*ports=*/1};
  // Aggregation updates are sums by construction — the side array coalesces
  // `delta[i] += d` — so the update is a pure delta (rmw_linear stays true)
  // and the value analysis can derive |delta| bounds from old/new.
  access.has_rmw_values = true;
  access.rmw_old = old_v;
  access.rmw_new = new_v;
  report_register_access(access);
}

std::int64_t AggregatedRegister::packet_read(std::size_t idx,
                                             std::uint64_t cycle) {
  main_.ports().try_acquire(cycle);
  probe(RegisterRealization::kAggregatedMain, RegisterOp::kRead, idx);
  return main_.read(idx);
}

std::int64_t AggregatedRegister::packet_add(std::size_t idx,
                                            std::int64_t delta,
                                            std::uint64_t cycle) {
  main_.ports().try_acquire(cycle);
  const std::int64_t old_v = main_.read(idx);
  const std::int64_t new_v =
      main_.rmw(idx, [delta](std::int64_t v) { return v + delta; });
  probe_rmw(RegisterRealization::kAggregatedMain, idx, old_v, new_v);
  return new_v;
}

void AggregatedRegister::agg_add(AggArray& arr, std::size_t idx,
                                 std::int64_t delta, std::uint64_t cycle) {
  const std::size_t i = idx % arr.delta.size();
  arr.ports.try_acquire(cycle);
  const std::int64_t old_v = arr.delta[i];
  arr.delta[i] += delta;
  probe_rmw(&arr == &enq_ ? RegisterRealization::kAggregatedEnq
                          : RegisterRealization::kAggregatedDeq,
            idx, old_v, arr.delta[i]);
  if (!arr.in_fifo[i]) {
    arr.in_fifo[i] = 1;
    arr.dirty_since[i] = cycle;
    arr.fifo.push_back(static_cast<std::uint32_t>(i));
    note_backlog();
  }
  // If the coalesced delta returns to zero the entry stays queued; hardware
  // would still apply a zero delta (one wasted drain cycle), so we keep it.
  const std::int64_t pending = enq_.delta[i] + deq_.delta[i];
  value_error_max_ =
      std::max(value_error_max_, pending < 0 ? -pending : pending);
}

void AggregatedRegister::enqueue_add(std::size_t idx, std::int64_t delta,
                                     std::uint64_t cycle) {
  agg_add(enq_, idx, delta, cycle);
}

void AggregatedRegister::dequeue_add(std::size_t idx, std::int64_t delta,
                                     std::uint64_t cycle) {
  agg_add(deq_, idx, delta, cycle);
}

bool AggregatedRegister::apply_one(AggArray& arr, std::uint64_t cycle) {
  if (arr.fifo.empty()) {
    return false;
  }
  const std::uint32_t i = arr.fifo.front();
  arr.fifo.pop_front();
  arr.in_fifo[i] = 0;
  const std::int64_t delta = arr.delta[i];
  arr.delta[i] = 0;
  // One main-register RMW (uses the spare port bandwidth of this cycle).
  main_.ports().try_acquire(cycle);
  main_.rmw(i, [delta](std::int64_t v) { return v + delta; });
  // Staleness accounting: how long this update waited to become visible.
  const std::uint64_t age =
      cycle >= arr.dirty_since[i] ? cycle - arr.dirty_since[i] : 0;
  ++drained_;
  staleness_sum_ += age;
  staleness_max_ = std::max(staleness_max_, age);
  return true;
}

std::size_t AggregatedRegister::drain(std::uint64_t cycle,
                                      std::size_t budget) {
  std::size_t applied = 0;
  while (applied < budget && backlog() > 0) {
    // Array selection per the programmer's drain policy (§4 future work).
    bool enq_first;
    switch (policy_) {
      case DrainPolicy::kEnqueueFirst:
        enq_first = true;
        break;
      case DrainPolicy::kDequeueFirst:
        enq_first = false;
        break;
      case DrainPolicy::kRoundRobin:
      default:
        enq_first = drain_from_enq_next_;
        drain_from_enq_next_ = !drain_from_enq_next_;
        break;
    }
    AggArray& first = enq_first ? enq_ : deq_;
    AggArray& second = enq_first ? deq_ : enq_;
    if (!apply_one(first, cycle) && !apply_one(second, cycle)) {
      break;
    }
    ++applied;
  }
  return applied;
}

std::int64_t AggregatedRegister::pending_error(std::size_t idx) const {
  const std::size_t i = idx % enq_.delta.size();
  return enq_.delta[i] + deq_.delta[i];
}

void AggregatedRegister::drain_all(std::uint64_t cycle) {
  while (backlog() > 0) {
    drain(cycle, backlog());
  }
}

std::int64_t AggregatedRegister::true_value(std::size_t idx) const {
  const std::size_t i = idx % enq_.delta.size();
  return main_.read(i) + enq_.delta[i] + deq_.delta[i];
}

std::uint64_t AggregatedRegister::oldest_age(std::uint64_t cycle) const {
  std::uint64_t oldest = 0;
  if (!enq_.fifo.empty()) {
    oldest = std::max(oldest, cycle - enq_.dirty_since[enq_.fifo.front()]);
  }
  if (!deq_.fifo.empty()) {
    oldest = std::max(oldest, cycle - deq_.dirty_since[deq_.fifo.front()]);
  }
  return oldest;
}

void AggregatedRegister::note_backlog() {
  backlog_max_ = std::max(backlog_max_, backlog());
}

}  // namespace edp::core
