#include "core/event_merger.hpp"

#include <algorithm>
#include <cassert>

namespace edp::core {

EventMerger::EventMerger(sim::Scheduler& sched, MergerConfig config)
    : sched_(sched),
      config_(config),
      event_vectors_(/*max_idle=*/64,
                     [](std::vector<Event>& v) { v.clear(); }) {
  assert(config_.cycle_time > sim::Time::zero());
  assert(config_.clock_phase >= sim::Time::zero() &&
         config_.clock_phase < config_.cycle_time);
  packets_.reserve(config_.packet_fifo_depth);
  for (auto& fifo : fifos_) {
    fifo.reserve(config_.event_fifo_depth);
  }
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    order_[k] = k;
  }
  std::stable_sort(order_.begin(), order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return config_.priority[a] > config_.priority[b];
                   });
}

bool EventMerger::submit_packet(net::Packet packet, PacketOrigin origin) {
  if (packets_.size() >= config_.packet_fifo_depth) {
    ++packet_drops_;
    return false;
  }
  packets_.push_back(PendingPacket{std::move(packet), origin});
  pump();
  return true;
}

bool EventMerger::admit_event(Event&& event) {
  auto& st = stats_[static_cast<std::size_t>(event.kind)];
  ++st.submitted;
  auto& fifo = fifos_[static_cast<std::size_t>(event.kind)];
  if (fifo.size() >= config_.event_fifo_depth) {
    ++st.dropped;
    return false;
  }
  fifo.push_back(std::move(event));
  return true;
}

bool EventMerger::submit_event(Event event) {
  const bool ok = admit_event(std::move(event));
  if (ok) {
    pump();
  }
  return ok;
}

std::size_t EventMerger::submit_events(Event* events, std::size_t n) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (admit_event(std::move(events[i]))) {
      ++accepted;
    }
  }
  if (accepted > 0) {
    pump();
  }
  return accepted;
}

bool EventMerger::has_work() const {
  if (!packets_.empty()) {
    return true;
  }
  return std::any_of(fifos_.begin(), fifos_.end(),
                     [](const auto& f) { return !f.empty(); });
}

std::size_t EventMerger::event_backlog() const {
  std::size_t n = 0;
  for (const auto& f : fifos_) {
    n += f.size();
  }
  return n;
}

void EventMerger::pump() {
  if (slot_scheduled_ || !has_work()) {
    return;
  }
  // Slots stay on this switch's clock grid (k * cycle + phase): the next
  // slot is the later of the next free pipeline cycle and the grid point
  // at/after "now".
  const sim::Time cycle = config_.cycle_time;
  const std::int64_t rel = sched_.now().ps() - config_.clock_phase.ps();
  const std::int64_t k =
      rel <= 0 ? 0 : (rel + cycle.ps() - 1) / cycle.ps();
  const sim::Time aligned(k * cycle.ps() + config_.clock_phase.ps());
  const sim::Time when = std::max(next_slot_time_, aligned);
  slot_scheduled_ = true;
  sched_.at(when, [this] { run_slot(); });
}

void EventMerger::run_slot() {
  slot_scheduled_ = false;
  if (!has_work()) {
    return;  // everything was consumed by an earlier slot
  }

  SlotWork work;
  work.events = event_vectors_.acquire();  // recycled capacity, cleared
  work.time = sched_.now();
  work.cycle = cycle_at(work.time);

  // Idle-cycle accounting for the aggregation drain.
  last_gap_cycles_ = first_slot_done_ && work.cycle > last_slot_cycle_ + 1
                         ? work.cycle - last_slot_cycle_ - 1
                         : 0;
  last_slot_cycle_ = work.cycle;
  first_slot_done_ = true;

  // Take the ingress packet, if any.
  if (!packets_.empty()) {
    work.packet = std::move(packets_.front().packet);
    work.origin = packets_.front().origin;
    packets_.pop_front();
    ++slots_with_packet_;
  }

  // Attach pending events: up to `events_per_kind_per_slot` from each
  // kind's FIFO (the per-kind metadata fields of the SUME event bus),
  // subject to the shared per-slot budget. Kinds are visited in
  // programmer-assigned priority order (precomputed at construction;
  // stable by kind index on ties), so urgent events win the metadata
  // space when it is scarce (§4 future work on access scheduling).
  std::size_t budget = config_.events_per_slot;
  for (const std::size_t k : order_) {
    auto& fifo = fifos_[k];
    for (std::size_t i = 0; i < config_.events_per_kind_per_slot &&
                            !fifo.empty() && budget > 0;
         ++i, --budget) {
      Event ev = std::move(fifo.front());
      fifo.pop_front();
      auto& st = stats_[static_cast<std::size_t>(ev.kind)];
      ++st.delivered;
      const sim::Time wait = work.time - ev.created;
      st.wait_sum += wait;
      st.wait_max = std::max(st.wait_max, wait);
      work.events.push_back(std::move(ev));
      if (work.packet) {
        ++events_piggybacked_;
      } else {
        ++events_on_carrier_;
      }
    }
  }

  work.carrier = !work.packet && !work.events.empty();
  if (work.carrier) {
    ++slots_carrier_;
  }
  ++slots_total_;

  next_slot_time_ = work.time + config_.cycle_time;

  if (on_slot) {
    on_slot(std::move(work));
  } else {
    recycle(std::move(work));
  }
  pump();  // more work -> next slot
}

}  // namespace edp::core
