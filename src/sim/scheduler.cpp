#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace edp::sim {

namespace {
// Pre-sizing the slot/queue vectors puts the kernel in its zero-allocation
// steady state immediately for all but the largest event populations.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : use_wheel_(opts.use_wheel), wheel_(opts.wheel_res_bits) {
  heap_.reserve(kInitialCapacity);
  burst_scratch_.reserve(kInitialCapacity);
  sametick_scratch_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

std::uint32_t Scheduler::mint_slot(InlineCallback fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  assert(!s.live);
  s.fn = std::move(fn);
  s.live = true;
  ++live_count_;
  return slot;
}

void Scheduler::queue_push(const QueueEntry& e) {
  if (use_wheel_) {
    const std::uint64_t tick = wheel_.tick_of(e.when);
    if (wheel_.covers(tick)) {
      wheel_.insert(tick, e);
      return;
    }
  }
  heap_push(e);
}

EventId Scheduler::at(Time when, InlineCallback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = mint_slot(std::move(fn));
  const std::uint32_t gen = slots_[slot].gen;
  queue_push(QueueEntry{when, next_seq_++, slot, gen});
  return make_id(gen, slot);
}

EventId Scheduler::after(Time delay, InlineCallback fn) {
  assert(delay >= Time::zero());
  return at(now_ + delay, std::move(fn));
}

void Scheduler::at_batch(BatchItem* items, std::size_t n) {
  // Sequence numbers are minted in array order, so the burst interleaves
  // with at() calls exactly as the equivalent loop of singles would.
  for (std::size_t i = 0; i < n; ++i) {
    at(items[i].when, std::move(items[i].fn));
  }
}

bool Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  // Only genuinely pending callbacks can be cancelled; fired, unknown, and
  // doubly-cancelled ids all fail the generation/liveness check.
  if (!s.live || s.gen != gen) {
    return false;
  }
  s.fn.reset();
  s.live = false;
  s.gen = next_gen(s.gen);  // orphans the queue entry; discarded at fire time
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

std::size_t Scheduler::cancel_batch(const EventId* ids, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto slot = static_cast<std::uint32_t>(ids[i] & 0xffffffffu);
    if (slot < slots_.size()) {
      __builtin_prefetch(&slots_[slot], 1, 1);
    }
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cancelled += cancel(ids[i]) ? 1 : 0;
  }
  return cancelled;
}

void Scheduler::heap_push(QueueEntry item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

QueueEntry Scheduler::heap_pop() {
  assert(!heap_.empty());
  const QueueEntry top = heap_[0];
  const QueueEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root. 4-ary: children of i are 4i+1..4i+4.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t limit = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (entry_earlier(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!entry_earlier(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Scheduler::advance_cursor(std::uint64_t tick) {
  if (!use_wheel_ || tick <= wheel_.cursor()) {
    return;
  }
  wheel_.set_cursor(tick);
  // Cascade: the heap is ordered by (when, seq), so its tick-order prefix
  // holds exactly the entries that have come within the wheel horizon.
  while (!heap_.empty() && wheel_.covers(wheel_.tick_of(heap_[0].when))) {
    const QueueEntry e = heap_pop();
    wheel_.insert(wheel_.tick_of(e.when), e);
  }
}

std::size_t Scheduler::fire_tick(std::uint64_t t0, const Time* deadline,
                                 std::size_t budget, bool& stopped) {
  std::vector<QueueEntry>& burst = burst_scratch_;
  burst.clear();
  // Drain BOTH tiers at t0. Normally the wheel alone holds this tick, but
  // after an all-stale drain the cursor can sit past tick(now_); entries
  // scheduled into that gap live below the cursor and are stored in the
  // heap (covers() rejects them), so the heap prefix must be merged too.
  if (use_wheel_ && wheel_.covers(t0) && wheel_.bucket_nonempty(t0)) {
    wheel_.take_bucket(t0, burst);
  }
  while (!heap_.empty() && wheel_.tick_of(heap_[0].when) == t0) {
    burst.push_back(heap_pop());
  }
  // Drop already-cancelled entries before sorting: stale-now is stale
  // forever (generations only move forward), so this cannot drop anything
  // the fire loop would have run, and under mod_timer-style reset churn
  // most of a bucket can be stale. Prefetch ahead: each check touches a
  // cold slot line.
  {
    std::size_t w = 0;
    for (std::size_t r = 0; r < burst.size(); ++r) {
      if (r + 8 < burst.size()) {
        __builtin_prefetch(&slots_[burst[r + 8].slot], 0, 1);
      }
      const Slot& s = slots_[burst[r].slot];
      if (s.live && s.gen == burst[r].gen) {
        burst[w++] = burst[r];
      }
    }
    burst.resize(w);
  }
  if (burst.size() > 1) {
    std::sort(burst.begin(), burst.end(), EntryEarlier{});
  }
  ++bursts_;

  // Same-tick arrivals (a callback scheduling < one tick ahead — the merger
  // pump does this constantly) go into a small min-heap instead of forcing
  // a re-sort of the remaining burst after every callback. Each step fires
  // min(burst[i], sametick.top()), which is exactly the (when, seq) total
  // order the one-at-a-time heap would have produced.
  std::vector<QueueEntry>& st = sametick_scratch_;
  assert(st.empty());
  const auto st_later = [](const QueueEntry& a, const QueueEntry& b) {
    return entry_earlier(b, a);  // inverted: std::push_heap builds max-heaps
  };

  std::size_t i = 0;
  std::size_t n_fired = 0;
  stopped = false;
  for (;;) {
    const bool from_st =
        !st.empty() && (i >= burst.size() || entry_earlier(st[0], burst[i]));
    if (!from_st && i >= burst.size()) {
      break;
    }
    const QueueEntry e = from_st ? st[0] : burst[i];
    Slot& s = slots_[e.slot];
    if (!s.live || s.gen != e.gen) {
      // Cancelled mid-burst: the slot moved on to a newer generation.
      if (from_st) {
        std::pop_heap(st.begin(), st.end(), st_later);
        st.pop_back();
      } else {
        ++i;
      }
      continue;
    }
    if ((deadline != nullptr && e.when > *deadline) || n_fired >= budget) {
      // Deadline or budget cuts the burst mid-tick: re-queue the unfired
      // remainder (still pending, untouched) and let the caller resume.
      for (std::size_t j = i; j < burst.size(); ++j) {
        queue_push(burst[j]);
      }
      for (const QueueEntry& q : st) {
        queue_push(q);
      }
      st.clear();
      stopped = true;
      break;
    }
    if (from_st) {
      std::pop_heap(st.begin(), st.end(), st_later);
      st.pop_back();
    } else {
      ++i;
    }
    if (i + 8 < burst.size()) {
      // The slot was minted thousands of events ago and is cold by now;
      // hide the miss behind the current callback's work.
      __builtin_prefetch(&slots_[burst[i + 8].slot], 1, 1);
    }
    // Retire the slot *before* invoking, so the callback observes its own
    // id as already fired: cancel(own_id) from within is a detected no-op.
    // The closure runs in place (no relocation); the slot joins the free
    // list only after it returns, so a reschedule can never overwrite the
    // closure while it is still executing.
    s.live = false;
    s.gen = next_gen(s.gen);
    --live_count_;
    assert(e.when >= now_);
    now_ = e.when;
    ++executed_;
    ++n_fired;
    s.fn();
    // Re-index: the callback may have scheduled events and grown slots_.
    slots_[e.slot].fn.reset();
    free_slots_.push_back(e.slot);
    // Entries the callback scheduled into this same tick carry when >= now()
    // and fresher seqs; drain them into the same-tick heap.
    if (use_wheel_ && wheel_.covers(t0) && wheel_.bucket_nonempty(t0)) {
      const std::size_t before = st.size();
      wheel_.take_bucket(t0, st);
      for (std::size_t k = before; k < st.size(); ++k) {
        std::push_heap(st.begin(),
                       st.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                       st_later);
      }
    }
    while (!heap_.empty() && wheel_.tick_of(heap_[0].when) == t0) {
      st.push_back(heap_pop());
      std::push_heap(st.begin(), st.end(), st_later);
    }
  }
  return n_fired;
}

std::size_t Scheduler::run_core(const Time* deadline, std::size_t max_events) {
  std::size_t fired = 0;
  const std::uint64_t target_tick =
      deadline != nullptr ? wheel_.tick_of(*deadline) : 0;
  while (fired < max_events) {
    // Take the min tick across both tiers. Heap ticks are normally
    // >= cursor + kSlots, making the wheel candidate win, but entries
    // scheduled below the cursor (see fire_tick) sit in the heap and can
    // be earlier than anything the wheel holds.
    std::uint64_t t0;
    bool have = false;
    if (use_wheel_ && wheel_.count() > 0) {
      t0 = *wheel_.next_occupied_tick();
      have = true;
    }
    if (!heap_.empty()) {
      const std::uint64_t ht = wheel_.tick_of(heap_[0].when);
      if (!have || ht < t0) {
        t0 = ht;
        have = true;
      }
    }
    if (!have) {
      break;
    }
    if (deadline != nullptr && t0 > target_tick) {
      break;
    }
    advance_cursor(t0);
    bool stopped = false;
    fired += fire_tick(t0, deadline, max_events - fired, stopped);
    if (stopped) {
      break;
    }
  }
  if (deadline != nullptr) {
    if (now_ < *deadline) {
      now_ = *deadline;
    }
    advance_cursor(target_tick);
  }
  return fired;
}

std::size_t Scheduler::run_until(Time deadline) {
  return run_core(&deadline, SIZE_MAX);
}

std::size_t Scheduler::run(std::size_t max_events) {
  return run_core(nullptr, max_events);
}

std::optional<Time> Scheduler::next_event_time() {
  std::optional<Time> earliest;
  if (use_wheel_) {
    while (wheel_.count() > 0) {
      const std::uint64_t t = *wheel_.next_occupied_tick();
      bool found = false;
      QueueEntry best{};
      wheel_.visit_bucket(t, [&](const QueueEntry& e) {
        const Slot& s = slots_[e.slot];
        if (s.live && s.gen == e.gen && (!found || entry_earlier(e, best))) {
          best = e;
          found = true;
        }
      });
      if (found) {
        earliest = best.when;
        break;
      }
      wheel_.clear_bucket(t);  // wholly stale: collect and keep looking
    }
  }
  // The heap can hold entries earlier than the wheel's (below-cursor ticks,
  // see fire_tick), so always consult it as well and keep the minimum.
  while (!heap_.empty()) {
    const QueueEntry& top = heap_[0];
    const Slot& s = slots_[top.slot];
    if (!s.live || s.gen != top.gen) {
      heap_pop();  // stale: collect and keep looking
      continue;
    }
    if (!earliest.has_value() || top.when < *earliest) {
      earliest = top.when;
    }
    break;
  }
  return earliest;
}

PeriodicTask::PeriodicTask(Scheduler& sched, Time period,
                           std::function<void()> fn)  // hotpath-ok: setup only
    : sched_(sched), period_(period), fn_(std::move(fn)) {
  assert(period_ > Time::zero());
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_at(sched_.now() + period_); }

void PeriodicTask::start_at(Time t) {
  stop();
  running_ = true;
  pending_ = sched_.at(t, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (running_) {
    sched_.cancel(pending_);
    running_ = false;
    pending_ = 0;
  }
}

void PeriodicTask::fire() {
  // Reschedule before invoking so `fn_` may call stop() to end the loop.
  pending_ = sched_.after(period_, [this] { fire(); });
  fn_();
}

}  // namespace edp::sim
