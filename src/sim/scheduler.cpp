#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace edp::sim {

namespace {
// Pre-sizing the slot/heap vectors puts the kernel in its zero-allocation
// steady state immediately for all but the largest event populations.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

Scheduler::Scheduler() {
  heap_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

EventId Scheduler::at(Time when, InlineCallback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  assert(!s.live);
  s.fn = std::move(fn);
  s.live = true;
  ++live_count_;
  heap_push(HeapItem{when, next_seq_++, slot, s.gen});
  return make_id(s.gen, slot);
}

EventId Scheduler::after(Time delay, InlineCallback fn) {
  assert(delay >= Time::zero());
  return at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  // Only genuinely pending callbacks can be cancelled; fired, unknown, and
  // doubly-cancelled ids all fail the generation/liveness check.
  if (!s.live || s.gen != gen) {
    return false;
  }
  s.fn.reset();
  s.live = false;
  s.gen = next_gen(s.gen);  // orphans the heap entry; discarded when popped
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void Scheduler::heap_push(HeapItem item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Scheduler::HeapItem Scheduler::heap_pop() {
  assert(!heap_.empty());
  const HeapItem top = heap_[0];
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root. 4-ary: children of i are 4i+1..4i+4.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t limit = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (earlier(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!earlier(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

bool Scheduler::pop_head() {
  const HeapItem top = heap_pop();
  Slot& s = slots_[top.slot];
  if (!s.live || s.gen != top.gen) {
    return false;  // cancelled: the slot moved on to a newer generation
  }
  // Release the slot *before* invoking, so the callback observes its own id
  // as already fired: cancel(own_id) from within is a detected no-op, and
  // the slot is immediately reusable for anything the callback schedules.
  InlineCallback fn = std::move(s.fn);
  s.live = false;
  s.gen = next_gen(s.gen);
  free_slots_.push_back(top.slot);
  --live_count_;
  assert(top.when >= now_);
  now_ = top.when;
  ++executed_;
  fn();
  return true;
}

std::size_t Scheduler::run_until(Time deadline) {
  const std::uint64_t before = executed_;
  while (!heap_.empty() && heap_[0].when <= deadline) {
    pop_head();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return static_cast<std::size_t>(executed_ - before);
}

std::optional<Time> Scheduler::next_event_time() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_[0];
    const Slot& s = slots_[top.slot];
    if (!s.live || s.gen != top.gen) {
      heap_pop();  // stale: collect and keep looking
      continue;
    }
    return top.when;
  }
  return std::nullopt;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !heap_.empty()) {
    if (pop_head()) {
      ++n;
    }
  }
  return n;
}

PeriodicTask::PeriodicTask(Scheduler& sched, Time period,
                           std::function<void()> fn)  // hotpath-ok: setup only
    : sched_(sched), period_(period), fn_(std::move(fn)) {
  assert(period_ > Time::zero());
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_at(sched_.now() + period_); }

void PeriodicTask::start_at(Time t) {
  stop();
  running_ = true;
  pending_ = sched_.at(t, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (running_) {
    sched_.cancel(pending_);
    running_ = false;
    pending_ = 0;
  }
}

void PeriodicTask::fire() {
  // Reschedule before invoking so `fn_` may call stop() to end the loop.
  pending_ = sched_.after(period_, [this] { fire(); });
  fn_();
}

}  // namespace edp::sim
