#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace edp::sim {

EventId Scheduler::at(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{when, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId Scheduler::after(Time delay, std::function<void()> fn) {
  assert(delay >= Time::zero());
  return at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  // Only genuinely pending callbacks can be cancelled; fired, unknown, and
  // doubly-cancelled ids are harmless no-ops.
  if (live_.erase(id) == 0) {
    return false;
  }
  // Lazy deletion: remember the id; skip it when popped.
  cancelled_.insert(id);
  return true;
}

void Scheduler::step() {
  // priority_queue has no non-const top() for moving; the const_cast is the
  // standard idiom — the entry is popped immediately after the move.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
    cancelled_.erase(it);
    return;
  }
  live_.erase(e.id);
  assert(e.when >= now_);
  now_ = e.when;
  ++executed_;
  e.fn();
}

std::size_t Scheduler::run_until(Time deadline) {
  const std::uint64_t before = executed_;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return static_cast<std::size_t>(executed_ - before);
}

std::optional<Time> Scheduler::next_event_time() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    return top.when;
  }
  return std::nullopt;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (!queue_.empty() && n < max_events) {
    step();
    ++n;
  }
  return n;
}

PeriodicTask::PeriodicTask(Scheduler& sched, Time period,
                           std::function<void()> fn)
    : sched_(sched), period_(period), fn_(std::move(fn)) {
  assert(period_ > Time::zero());
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_at(sched_.now() + period_); }

void PeriodicTask::start_at(Time t) {
  stop();
  running_ = true;
  pending_ = sched_.at(t, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (running_) {
    sched_.cancel(pending_);
    running_ = false;
    pending_ = 0;
  }
}

void PeriodicTask::fire() {
  // Reschedule before invoking so `fn_` may call stop() to end the loop.
  pending_ = sched_.after(period_, [this] { fire(); });
  fn_();
}

}  // namespace edp::sim
