// edp::sim — freelist-backed object recycler for per-event records.
//
// The simulation kernel's zero-allocation property (docs/PERFORMANCE.md)
// rests on recycling the few heap-owning objects that travel with events —
// packet payload buffers, slot-work event vectors, timer expiry batches —
// instead of destroying and reallocating them millions of times per run.
// ObjectPool is the single-threaded building block: release() parks an
// object on a freelist, acquire() revives it (after an optional reset, so
// recycled state can never leak into a fresh object).
//
// The stats() hook is load-bearing, not decorative: benches subtract
// allocated() across a timed phase to prove the steady state performs zero
// allocations per event (BENCH_sched.json / BENCH_runtime.json).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace edp::sim {

/// Counters for one pool. `allocated` is the miss count — the number of
/// acquires the freelist could not serve, i.e. real allocator traffic.
struct PoolStats {
  std::uint64_t acquired = 0;   ///< total acquire() calls
  std::uint64_t reused = 0;     ///< served from the freelist
  std::uint64_t allocated = 0;  ///< freelist miss: default-constructed fresh
  std::uint64_t released = 0;   ///< returned to the freelist
  std::uint64_t dropped = 0;    ///< released while full: destroyed instead
};

template <typename T>
class ObjectPool {
 public:
  /// Reset applied to a recycled object before acquire() hands it out
  /// (e.g. clear a vector while keeping its capacity). Fresh objects are
  /// default-constructed and returned as-is.
  using ResetFn = void (*)(T&);

  explicit ObjectPool(std::size_t max_idle = 1024, ResetFn reset = nullptr)
      : max_idle_(max_idle), reset_(reset) {}

  T acquire() {
    ++stats_.acquired;
    if (!idle_.empty()) {
      T v = std::move(idle_.back());
      idle_.pop_back();
      ++stats_.reused;
      if (reset_ != nullptr) {
        reset_(v);
      }
      return v;
    }
    ++stats_.allocated;
    return T{};
  }

  void release(T v) {
    if (idle_.size() >= max_idle_) {
      ++stats_.dropped;
      return;  // v destroyed; the pool stays bounded
    }
    ++stats_.released;
    idle_.push_back(std::move(v));
  }

  std::size_t idle() const { return idle_.size(); }
  std::size_t max_idle() const { return max_idle_; }
  const PoolStats& stats() const { return stats_; }

  /// Drop every idle object (tests / end-of-run teardown).
  void clear() { idle_.clear(); }

 private:
  std::vector<T> idle_;
  std::size_t max_idle_;
  ResetFn reset_;
  PoolStats stats_;
};

}  // namespace edp::sim
