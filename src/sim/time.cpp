#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace edp::sim {

Time Time::from_seconds(double s) {
  return Time(static_cast<std::int64_t>(std::llround(s * 1e12)));
}

std::string Time::to_string() const {
  char buf[48];
  const double ps = static_cast<double>(ps_);
  if (ps_ == 0) {
    return "0s";
  }
  const double aps = std::abs(ps);
  if (aps < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps_));
  } else if (aps < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gns", ps / 1e3);
  } else if (aps < 1e9) {
    std::snprintf(buf, sizeof buf, "%.4gus", ps / 1e6);
  } else if (aps < 1e12) {
    std::snprintf(buf, sizeof buf, "%.4gms", ps / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.4gs", ps / 1e12);
  }
  return buf;
}

Time serialization_time(std::uint64_t bytes, double bits_per_second) {
  if (bits_per_second <= 0.0) {
    return Time::zero();
  }
  const double seconds =
      static_cast<double>(bytes) * 8.0 / bits_per_second;
  return Time::from_seconds(seconds);
}

double rate_bps(std::uint64_t bytes, Time interval) {
  if (interval <= Time::zero()) {
    return 0.0;
  }
  return static_cast<double>(bytes) * 8.0 / interval.as_seconds();
}

}  // namespace edp::sim
