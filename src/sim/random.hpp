// edp::sim — deterministic random source for workload generation.
//
// Experiments must be reproducible: every stochastic choice in the simulator
// flows through a `Random` instance whose seed is part of the experiment
// configuration. The engine is xoshiro256++ (public domain, Blackman &
// Vigna), which is fast, has a 2^256-1 period, and — unlike the standard
// library distributions — gives us bit-identical streams across compilers.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace edp::sim {

/// Deterministic PRNG with the distributions the workloads need.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial.
  bool chance(double probability);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Geometric-ish Pareto with shape alpha (> 0) and minimum xm (> 0).
  double pareto(double xm, double alpha);

  /// Derive an independent child stream (e.g. one per host).
  Random fork();

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Zipf(n, s) sampler over {0, .., n-1} using precomputed CDF + binary
/// search. Used for skewed flow popularity (CMS / NetCache workloads).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t sample(Random& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace edp::sim
