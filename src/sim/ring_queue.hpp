// edp::sim — growable power-of-two ring buffer FIFO.
//
// Replaces std::deque on per-event paths (merger FIFOs, traffic-manager
// queues, host transmit queues). A deque allocates and frees a map node
// roughly every page's worth of elements even when its size oscillates
// around a constant — a steady drip of allocator traffic per packet. The
// ring reaches its high-water capacity once and then never touches the
// allocator again; head/tail are monotonically increasing counters masked
// into the slot array (the same construction as runtime::SpscRing, minus
// the atomics).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace edp::sim {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  std::size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Grow the slot array so `n` elements fit without reallocation.
  void reserve(std::size_t n) {
    if (n > slots_.size()) {
      grow(n);
    }
  }

  T& front() {
    assert(!empty());
    return slots_[head_ & mask_];
  }
  const T& front() const {
    assert(!empty());
    return slots_[head_ & mask_];
  }

  void push_back(T v) {
    if (size() == slots_.size()) {
      grow(slots_.size() * 2);
    }
    slots_[tail_ & mask_] = std::move(v);
    ++tail_;
  }

  /// Pop the front slot. The slot keeps its moved-from element (and thus
  /// any capacity the element type retains) until the ring laps back to it
  /// — callers move `front()` out first.
  void pop_front() {
    assert(!empty());
    ++head_;
  }

  void clear() { head_ = tail_ = 0; }

 private:
  void grow(std::size_t min_capacity) {
    std::size_t cap = 8;
    while (cap < min_capacity) {
      cap <<= 1;
    }
    std::vector<T> next(cap);
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    mask_ = cap - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace edp::sim
