// edp::sim — near-horizon timing-wheel tier of the event kernel.
//
// A flat, non-lapping wheel: 2^12 buckets, each covering one
// resolution-quantized tick (default 2^19 ps ≈ 524 ns), for a horizon of
// ~2.1 ms past the cursor — wide enough for every rate-based app period
// (policer refill 100 µs, liveness check 500 µs, AQM update 1 ms). The
// scheduler keeps every pending entry whose tick lands inside
// [cursor, cursor + kSlots) here and spills the far future to its 4-ary
// heap; as the cursor advances, heap entries whose tick has come within
// the horizon cascade into the wheel.
//
// Buckets are flat vectors that retain capacity across laps: inserts into
// a dense bucket append contiguously (mod_timer-style reset churn lands
// whole cancel/re-arm batches in one bucket), and draining is a single
// sequential copy the hardware prefetcher streams — unlike a linked
// node-slab, whose drain is a serial dependent-load chain.
//
// Exactness: buckets hold full-precision (when, seq) keys — quantization
// only decides *where* an entry is stored, never *when* it fires. The
// scheduler drains one bucket at a time into a POD scratch burst and
// sorts it by (when, seq), so the fire order is identical to the heap's
// total order and determinism digests are unchanged (docs/PERFORMANCE.md).
//
// Within the horizon, slot index = tick & kMask is a bijection, so a
// bucket never mixes entries from different laps and insert/expire are
// O(1) plus an occupancy-bitmap bit flip.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace edp::sim {

/// Pending-event key: full-precision fire time, global sequence tie-break,
/// and a generation-tagged callback-slot reference. 24-byte POD shared by
/// the wheel buckets, the overflow heap, and the fire-burst scratch.
struct QueueEntry {
  Time when;
  std::uint64_t seq;   ///< monotonic tie-break: FIFO among same-time events
  std::uint32_t slot;
  std::uint32_t gen;
};

inline bool entry_earlier(const QueueEntry& a, const QueueEntry& b) {
  if (a.when != b.when) {
    return a.when < b.when;
  }
  return a.seq < b.seq;
}

/// Functor form for std::sort: inlines per-comparison, unlike passing
/// `entry_earlier` itself (a function pointer → indirect call each compare).
struct EntryEarlier {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    return entry_earlier(a, b);
  }
};

class WheelTier {
 public:
  static constexpr unsigned kDefaultResBits = 19;  ///< 524.288 ns per tick
  static constexpr std::size_t kSlotBits = 12;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::size_t kMask = kSlots - 1;
  static constexpr std::size_t kWords = kSlots / 64;  ///< occupancy bitmap

  explicit WheelTier(unsigned res_bits = kDefaultResBits)
      : res_bits_(res_bits) {}

  /// Quantize an absolute time to its wheel tick.
  std::uint64_t tick_of(Time t) const {
    return static_cast<std::uint64_t>(t.ps()) >> res_bits_;
  }

  std::uint64_t cursor() const { return cursor_; }
  std::size_t count() const { return count_; }

  /// True iff `tick` lands inside the wheel horizon. Pre: tick >= cursor().
  bool covers(std::uint64_t tick) const { return tick - cursor_ < kSlots; }

  /// Advance the cursor. Pre: no occupied bucket in [cursor(), tick) — the
  /// scheduler drains buckets strictly in tick order before moving on.
  void set_cursor(std::uint64_t tick) {
    assert(tick >= cursor_);
    cursor_ = tick;
  }

  /// O(1) amortized insert. Pre: cursor() <= tick && covers(tick).
  void insert(std::uint64_t tick, const QueueEntry& e) {
    assert(tick >= cursor_ && covers(tick));
    ensure_init();
    const std::size_t s = tick & kMask;
    buckets_[s].push_back(e);  // hotpath-ok: capacity retained across laps
    words_[s >> 6] |= std::uint64_t{1} << (s & 63);
    ++count_;
  }

  bool bucket_nonempty(std::uint64_t tick) const {
    if (count_ == 0) {
      return false;
    }
    const std::size_t s = tick & kMask;
    return (words_[s >> 6] >> (s & 63)) & 1;
  }

  /// Visit every entry in a bucket read-only (for stale-entry scans).
  /// Pre: initialized, which count() > 0 guarantees.
  template <typename F>
  void visit_bucket(std::uint64_t tick, F&& f) const {
    for (const QueueEntry& e : buckets_[tick & kMask]) {
      f(e);
    }
  }

  /// Append the bucket's entries to `out` and empty it, retaining its
  /// capacity so the steady state never re-allocates. Returns entry count.
  std::size_t take_bucket(std::uint64_t tick, std::vector<QueueEntry>& out) {
    assert(covers(tick));
    const std::size_t s = tick & kMask;
    std::vector<QueueEntry>& b = buckets_[s];
    const std::size_t n = b.size();
    out.insert(out.end(), b.begin(), b.end());  // hotpath-ok: capacity kept
    b.clear();
    clear_bit(s);
    count_ -= n;
    return n;
  }

  /// Drop every entry in a bucket (all known stale).
  void clear_bucket(std::uint64_t tick) {
    const std::size_t s = tick & kMask;
    count_ -= buckets_[s].size();
    buckets_[s].clear();
    clear_bit(s);
  }

  /// Earliest occupied tick at or after the cursor; nullopt when empty.
  /// Bitmap scan: one countr_zero per 64 buckets, so <= 64 words total.
  std::optional<std::uint64_t> next_occupied_tick() const {
    if (count_ == 0) {
      return std::nullopt;
    }
    const std::size_t sc = cursor_ & kMask;
    std::size_t w = sc >> 6;
    std::uint64_t word = words_[w] & (~std::uint64_t{0} << (sc & 63));
    for (std::size_t step = 0;; ++step) {
      if (word != 0) {
        const std::size_t s =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        return cursor_ + ((s - sc) & kMask);
      }
      if (step == kWords) {
        break;
      }
      w = (w + 1) & (kWords - 1);
      word = words_[w];
      if (step == kWords - 1) {
        // Wrapped back to the start word: only its low bits remain unseen.
        word &= ~(~std::uint64_t{0} << (sc & 63));
      }
    }
    assert(false && "count_ > 0 but no occupancy bit set");
    return std::nullopt;
  }

 private:
  void ensure_init() {
    if (buckets_.empty()) {
      buckets_.resize(kSlots);
      words_.assign(kWords, 0);
    }
  }
  void clear_bit(std::size_t s) {
    words_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }

  unsigned res_bits_;
  std::uint64_t cursor_ = 0;  ///< ticks < cursor_ are in the past
  std::size_t count_ = 0;
  std::vector<std::vector<QueueEntry>> buckets_;  ///< lazily sized to kSlots
  std::vector<std::uint64_t> words_;  ///< bit set ⟺ bucket nonempty
};

}  // namespace edp::sim
