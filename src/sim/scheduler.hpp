// edp::sim — deterministic discrete-event scheduler.
//
// The simulation kernel: a 4-ary min-heap of (time, sequence) keys over
// generation-tagged callback slots. The sequence number makes ordering total
// and deterministic — two events scheduled for the same instant fire in
// scheduling order, which is what makes whole-network runs bit-reproducible
// for a given seed.
//
// Hot-path design (docs/PERFORMANCE.md):
//  * Callbacks live in InlineCallback slots — fixed inline storage, no heap
//    fallback — so scheduling an event never allocates once the slot and
//    heap vectors have reached their high-water capacity.
//  * An EventId is (generation << 32) | slot index. cancel() is two array
//    reads and a generation bump — O(1), no hashing — and stale heap
//    entries are discarded lazily when they surface at the head, by
//    comparing their recorded generation against the slot's current one.
//  * The heap is 4-ary over a contiguous vector: ~half the depth of a
//    binary heap, with all four children of a node in one cache line.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace edp::sim {

/// Handle to a scheduled callback; used to cancel it. Packs
/// (generation << 32) | slot. Generations start at 1 and skip 0 on
/// wraparound, so 0 is never a valid id (callers use it as "none").
using EventId = std::uint64_t;

/// Discrete-event scheduler. Single-threaded by design: network simulation
/// correctness comes from the global time order, not concurrency.
class Scheduler {
 public:
  Scheduler();

  // The scheduler owns pending closures that may capture references to it;
  // moving it would dangle them.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  EventId at(Time when, InlineCallback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  EventId after(Time delay, InlineCallback fn);

  /// External event injection (runtime/ cross-shard deliveries): identical
  /// to at(), but documents the contract — the caller must be externally
  /// synchronized with this scheduler (the shard barrier guarantees the
  /// owning worker is parked), and `when` may equal now() exactly, in which
  /// case the callback fires in the *next* execution window.
  EventId inject(Time when, InlineCallback fn) {
    return at(when, std::move(fn));
  }

  /// Cancel a pending callback: O(1). Cancelling an already-fired or
  /// unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Run every event with time <= `deadline`; leaves now() == deadline.
  /// Returns the number of callbacks executed (bounded-horizon execution:
  /// the parallel runtime calls this once per conservative time window).
  std::size_t run_until(Time deadline);

  /// Earliest pending (uncancelled) event time, or nullopt when drained.
  /// Lazily discards cancelled entries encountered at the heap head.
  std::optional<Time> next_event_time();

  /// Run until the queue drains (or `max_events` fire, as a runaway guard).
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// True if no pending (uncancelled) events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of pending events. Exact: cancelled events leave this count
  /// immediately, not when their heap entry is lazily collected.
  std::size_t pending() const { return live_count_; }

  /// Total callbacks executed since construction (diagnostics).
  std::uint64_t executed() const { return executed_; }

 private:
  friend class SchedulerTestPeer;  // tests force generation wraparound

  /// A callback slot, reused across events. `gen` tags the current
  /// occupancy: an EventId or heap entry minted for an earlier occupancy
  /// carries a stale generation and is recognisably dead in O(1).
  struct Slot {
    InlineCallback fn;
    std::uint32_t gen = 1;
    bool live = false;
  };

  /// Heap key + slot reference; 24-byte POD, moved by memcpy during sifts.
  struct HeapItem {
    Time when;
    std::uint64_t seq;   ///< monotonic tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const HeapItem& a, const HeapItem& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }
  static std::uint32_t next_gen(std::uint32_t g) {
    ++g;
    return g == 0 ? 1 : g;  // skip 0 so an EventId is never 0
  }
  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  /// Pop the heap head; fire it if live, discard it if stale.
  /// Pre: !heap_.empty(). Returns true iff a callback executed.
  bool pop_head();

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;  ///< LIFO: hottest slot reused first
};

/// Convenience: a repeating task bound to a scheduler. Owns its rescheduling
/// loop; stops when `stop()` is called or the object is destroyed.
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, Time period,
               std::function<void()> fn);  // hotpath-ok: setup only
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();          ///< First fire one period from now.
  void start_at(Time t); ///< First fire at absolute time t.
  void stop();

  bool running() const { return running_; }
  Time period() const { return period_; }

 private:
  void fire();

  Scheduler& sched_;
  Time period_;
  std::function<void()> fn_;  // hotpath-ok: stored once, invoked in place
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace edp::sim
