// edp::sim — deterministic discrete-event scheduler.
//
// The simulation kernel: a two-tier pending queue — a timing wheel for the
// near horizon plus a 4-ary min-heap of (time, sequence) keys as far-future
// overflow — over generation-tagged callback slots. The sequence number
// makes ordering total and deterministic: two events scheduled for the same
// instant fire in scheduling order, which is what makes whole-network runs
// bit-reproducible for a given seed.
//
// Hot-path design (docs/PERFORMANCE.md):
//  * Callbacks live in InlineCallback slots — fixed inline storage, no heap
//    fallback — so scheduling an event never allocates once the slot and
//    queue vectors have reached their high-water capacity.
//  * An EventId is (generation << 32) | slot index. cancel() is two array
//    reads and a generation bump — O(1), no hashing — and stale queue
//    entries are discarded lazily when they surface in a fire burst, by
//    comparing their recorded generation against the slot's current one.
//  * Near-horizon entries (within ~268 µs of the cursor) sit in a flat
//    timing wheel (sim/wheel.hpp): O(1) insert and expire, so dense
//    periodic timers no longer pay O(log n) each. The heap takes the far
//    future and cascades into the wheel as the cursor advances.
//  * Events fire in per-tick bursts: each occupied wheel bucket is drained
//    into a POD scratch vector, sorted by (when, seq), and fired in place —
//    exactly the heap's total order, so determinism digests are unchanged.
//  * The overflow heap is 4-ary over a contiguous vector: ~half the depth
//    of a binary heap, with all four children of a node in one cache line.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"
#include "sim/wheel.hpp"

namespace edp::sim {

/// Handle to a scheduled callback; used to cancel it. Packs
/// (generation << 32) | slot. Generations start at 1 and skip 0 on
/// wraparound, so 0 is never a valid id (callers use it as "none").
using EventId = std::uint64_t;

/// Kernel tuning knobs. The wheel tier changes only the data structure
/// holding pending entries, never the fire order, so both configurations
/// produce bit-identical runs — use_wheel=false exists for benchmarking
/// the wheel win (bench_sched_throughput's timer_storm) and for
/// differential tests.
struct SchedulerOptions {
  bool use_wheel = true;
  unsigned wheel_res_bits = WheelTier::kDefaultResBits;
};

/// Discrete-event scheduler. Single-threaded by design: network simulation
/// correctness comes from the global time order, not concurrency.
class Scheduler {
 public:
  /// One burst element for at_batch()/inject_batch().
  struct BatchItem {
    Time when;
    InlineCallback fn;
  };

  Scheduler() : Scheduler(default_options()) {}
  explicit Scheduler(SchedulerOptions opts);

  // The scheduler owns pending closures that may capture references to it;
  // moving it would dangle them.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Process-wide default for subsequently constructed schedulers. Not
  /// thread-safe: set it before spawning workers (benchmark main()s only).
  static void set_default_options(SchedulerOptions opts) {
    default_options_ = opts;
  }
  static SchedulerOptions default_options() { return default_options_; }

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  EventId at(Time when, InlineCallback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  EventId after(Time delay, InlineCallback fn);

  /// Bulk-insert a burst of entries in one call: slots are minted and
  /// sequence numbers assigned in array order, so the burst is totally
  /// ordered exactly as the equivalent at() loop would be. Items' callbacks
  /// are consumed (moved from). Wheel-tier entries are O(1) each.
  void at_batch(BatchItem* items, std::size_t n);

  /// External event injection (runtime/ cross-shard deliveries): identical
  /// to at(), but documents the contract — the caller must be externally
  /// synchronized with this scheduler (the shard barrier guarantees the
  /// owning worker is parked), and `when` may equal now() exactly, in which
  /// case the callback fires in the *next* execution window.
  EventId inject(Time when, InlineCallback fn) {
    return at(when, std::move(fn));
  }

  /// Batched inject: one call per drained cross-shard ring burst.
  void inject_batch(BatchItem* items, std::size_t n) { at_batch(items, n); }

  /// Cancel a pending callback: O(1). Cancelling an already-fired or
  /// unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Cancel a burst of ids; returns how many were genuinely pending.
  /// Equivalent to calling cancel() in array order, but prefetches every
  /// target slot first so the (cold) slot-line misses overlap instead of
  /// serializing — the mod_timer reset pattern cancels in dense batches.
  std::size_t cancel_batch(const EventId* ids, std::size_t n);

  /// Run every event with time <= `deadline`; leaves now() == deadline.
  /// Returns the number of callbacks executed (bounded-horizon execution:
  /// the parallel runtime calls this once per conservative time window).
  std::size_t run_until(Time deadline);

  /// Earliest pending (uncancelled) event time, or nullopt when drained.
  /// Lazily discards cancelled entries it has to step over.
  std::optional<Time> next_event_time();

  /// Run until the queue drains (or `max_events` fire, as a runaway guard).
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// True if no pending (uncancelled) events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of pending events. Exact: cancelled events leave this count
  /// immediately, not when their queue entry is lazily collected.
  std::size_t pending() const { return live_count_; }

  /// Total callbacks executed since construction (diagnostics).
  std::uint64_t executed() const { return executed_; }

  /// Fire-burst diagnostics: bursts() counts per-tick drain cycles;
  /// executed()/bursts() is the average burst size.
  std::uint64_t bursts() const { return bursts_; }

  /// Entries currently parked in the wheel tier (diagnostics).
  std::size_t wheel_entries() const { return wheel_.count(); }

 private:
  friend class SchedulerTestPeer;  // tests force generation wraparound

  /// A callback slot, reused across events. `gen` tags the current
  /// occupancy: an EventId or queue entry minted for an earlier occupancy
  /// carries a stale generation and is recognisably dead in O(1).
  struct Slot {
    // Liveness check, dispatch pointer, and the first bytes of a small
    // closure all land in the slot's first cache line (fire touches the
    // slot cold — it was minted thousands of events earlier).
    std::uint32_t gen = 1;
    bool live = false;
    InlineCallback fn;
  };

  static std::uint32_t next_gen(std::uint32_t g) {
    ++g;
    return g == 0 ? 1 : g;  // skip 0 so an EventId is never 0
  }
  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::uint32_t mint_slot(InlineCallback fn);

  /// Route an entry to the wheel (near horizon) or the heap (far future).
  void queue_push(const QueueEntry& e);

  void heap_push(QueueEntry item);
  QueueEntry heap_pop();

  /// Move the wheel cursor to `tick` and cascade heap entries whose tick
  /// has come within the horizon into the wheel. No-op in heap-only mode.
  void advance_cursor(std::uint64_t tick);

  /// Drain tick `t0`'s entries into the scratch burst and fire them in
  /// (when, seq) order, merging in same-tick entries scheduled by the
  /// callbacks themselves. Respects `deadline` (events strictly after it
  /// are re-queued) and `budget`; sets `stopped` when either cut the burst.
  std::size_t fire_tick(std::uint64_t t0, const Time* deadline,
                        std::size_t budget, bool& stopped);

  /// Shared engine behind run()/run_until().
  std::size_t run_core(const Time* deadline, std::size_t max_events);

  static inline SchedulerOptions default_options_{};

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t bursts_ = 0;
  std::size_t live_count_ = 0;
  bool use_wheel_;
  WheelTier wheel_;
  std::vector<QueueEntry> heap_;           ///< far-future overflow tier
  std::vector<QueueEntry> burst_scratch_;  ///< fire_tick working set
  std::vector<QueueEntry> sametick_scratch_;  ///< min-heap of same-tick adds
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;  ///< LIFO: hottest slot reused first
};

/// Convenience: a repeating task bound to a scheduler. Owns its rescheduling
/// loop; stops when `stop()` is called or the object is destroyed.
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, Time period,
               std::function<void()> fn);  // hotpath-ok: setup only
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();          ///< First fire one period from now.
  void start_at(Time t); ///< First fire at absolute time t.
  void stop();

  bool running() const { return running_; }
  Time period() const { return period_; }

 private:
  void fire();

  Scheduler& sched_;
  Time period_;
  std::function<void()> fn_;  // hotpath-ok: stored once, invoked in place
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace edp::sim
