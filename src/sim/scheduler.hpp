// edp::sim — deterministic discrete-event scheduler.
//
// The simulation kernel: a priority queue of (time, sequence, callback).
// The sequence number makes ordering total and deterministic — two events
// scheduled for the same instant fire in scheduling order, which is what
// makes whole-network runs bit-reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace edp::sim {

/// Handle to a scheduled callback; used to cancel it.
using EventId = std::uint64_t;

/// Discrete-event scheduler. Single-threaded by design: network simulation
/// correctness comes from the global time order, not concurrency.
class Scheduler {
 public:
  Scheduler() = default;

  // The scheduler owns pending closures that may capture references to it;
  // moving it would dangle them.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  EventId at(Time when, std::function<void()> fn);

  /// Schedule `fn` after a relative delay (>= 0).
  EventId after(Time delay, std::function<void()> fn);

  /// External event injection (runtime/ cross-shard deliveries): identical
  /// to at(), but documents the contract — the caller must be externally
  /// synchronized with this scheduler (the shard barrier guarantees the
  /// owning worker is parked), and `when` may equal now() exactly, in which
  /// case the callback fires in the *next* execution window.
  EventId inject(Time when, std::function<void()> fn) {
    return at(when, std::move(fn));
  }

  /// Cancel a pending callback. Cancelling an already-fired or unknown id is
  /// a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Run every event with time <= `deadline`; leaves now() == deadline.
  /// Returns the number of callbacks executed (bounded-horizon execution:
  /// the parallel runtime calls this once per conservative time window).
  std::size_t run_until(Time deadline);

  /// Earliest pending (uncancelled) event time, or nullopt when drained.
  /// Lazily discards cancelled entries encountered at the queue head.
  std::optional<Time> next_event_time();

  /// Run until the queue drains (or `max_events` fire, as a runaway guard).
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// True if no pending (uncancelled) events remain.
  bool empty() const { return queue_.size() == cancelled_.size(); }

  /// Number of pending events (including not-yet-collected cancelled ones).
  std::size_t pending() const { return queue_.size(); }

  /// Total callbacks executed since construction (diagnostics).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  /// Pop and run the earliest event; advances now(). Pre: !empty().
  void step();

  Time now_ = Time::zero();
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  /// Ids currently in queue_ and not cancelled. Keeping this set makes
  /// cancel() exact: cancelling an already-fired (or already-cancelled) id
  /// is a detectable no-op instead of silently corrupting the pending
  /// accounting.
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

/// Convenience: a repeating task bound to a scheduler. Owns its rescheduling
/// loop; stops when `stop()` is called or the object is destroyed.
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, Time period, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();          ///< First fire one period from now.
  void start_at(Time t); ///< First fire at absolute time t.
  void stop();

  bool running() const { return running_; }
  Time period() const { return period_; }

 private:
  void fire();

  Scheduler& sched_;
  Time period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace edp::sim
