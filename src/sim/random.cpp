#include "sim/random.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace edp::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) {
    word = splitmix64(x);
  }
}

std::uint64_t Random::next_u64() {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Random::uniform(std::uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Random::uniform_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) {
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Random::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Random::chance(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  if (probability >= 1.0) {
    return true;
  }
  return uniform01() < probability;
}

double Random::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform01();
  // Guard log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Random::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = uniform01();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return xm / std::pow(u, 1.0 / alpha);
}

Random Random::fork() { return Random(next_u64()); }

std::vector<std::size_t> Random::permutation(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = i;
  }
  for (std::size_t i = n; i > 1; --i) {
    std::swap(v[i - 1], v[uniform(i)]);
  }
  return v;
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

std::size_t ZipfSampler::sample(Random& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace edp::sim
