// edp::sim — a small-buffer-only callable for the scheduler hot path.
//
// Every simulated event carries a closure; std::function heap-allocates any
// capture larger than its (implementation-defined, ~16 byte) small buffer,
// which at millions of events per second makes the allocator the kernel's
// bottleneck. InlineCallback stores the closure in fixed inline storage and
// has NO heap fallback: a closure that does not fit is a compile error
// (static_assert), so the zero-allocation property is enforced at build
// time rather than decaying silently as captures grow.
//
// Requirements on the callable: nothrow-move-constructible (entries are
// relocated when the scheduler's slot vector grows) and invocable as
// void(). Copy is intentionally unsupported — events fire exactly once, so
// unlike std::function the callable may be move-only (e.g. capture a
// net::Packet or std::unique_ptr by value without a shared_ptr wrapper).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace edp::sim {

class InlineCallback {
 public:
  /// Sized for the largest in-tree closure: the transmit/cross-shard
  /// completions capture a net::Packet (~56 bytes) plus a pointer and port.
  static constexpr std::size_t kCapacity = 96;
  static constexpr std::size_t kAlign = 16;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& fn) {  // NOLINT: implicit by design, like std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "closure exceeds InlineCallback storage: shrink the "
                  "capture (capture pointers/indices, or box the state in a "
                  "unique_ptr) or raise kCapacity");
    static_assert(alignof(Fn) <= kAlign,
                  "closure over-aligned for InlineCallback storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closures must be nothrow-move-constructible (scheduler "
                  "slots relocate on growth)");
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineCallback requires a void() callable");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &kOps<Fn>;
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroy the held closure (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* src, void* dst);  ///< move-construct + destroy src
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr Ops kOps = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* src, void* dst) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  // ops_ leads so that it shares a cache line with the first bytes of the
  // closure: for the common small capture, dispatch + state is one line.
  const Ops* ops_ = nullptr;
  alignas(kAlign) unsigned char storage_[kCapacity];
};

}  // namespace edp::sim
