// edp::sim — simulation time.
//
// All simulation timestamps are integer picoseconds. Picosecond granularity
// lets us represent one clock cycle of a multi-GHz pipeline exactly, as well
// as per-byte serialization times on 10/40/100G links, without accumulating
// floating point error. A signed 64-bit picosecond counter covers ~106 days
// of simulated time, far beyond any experiment in this repository.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace edp::sim {

/// A point in simulated time (or a duration), in integer picoseconds.
///
/// `Time` is deliberately a tiny value type: it is ordered, supports the
/// arithmetic needed by schedulers and rate conversions, and nothing else.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t picoseconds) : ps_(picoseconds) {}

  /// Named constructors. These are the only way rates/periods should be
  /// written in user code: `Time::micros(50)` reads better than 50'000'000.
  static constexpr Time zero() { return Time(0); }
  static constexpr Time picos(std::int64_t v) { return Time(v); }
  static constexpr Time nanos(std::int64_t v) { return Time(v * 1'000); }
  static constexpr Time micros(std::int64_t v) { return Time(v * 1'000'000); }
  static constexpr Time millis(std::int64_t v) {
    return Time(v * 1'000'000'000);
  }
  static constexpr Time seconds(std::int64_t v) {
    return Time(v * 1'000'000'000'000);
  }
  /// Fractional seconds, useful for rate math; rounds to nearest picosecond.
  static Time from_seconds(double s);

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double as_nanos() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double as_micros() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double as_millis() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double as_seconds() const {
    return static_cast<double>(ps_) / 1e12;
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time o) const { return Time(ps_ + o.ps_); }
  constexpr Time operator-(Time o) const { return Time(ps_ - o.ps_); }
  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time(ps_ * k); }
  constexpr Time operator/(std::int64_t k) const { return Time(ps_ / k); }
  /// Ratio of two durations (e.g. elapsed / period).
  constexpr std::int64_t operator/(Time o) const { return ps_ / o.ps_; }
  constexpr Time operator%(Time o) const { return Time(ps_ % o.ps_); }

  /// Human-readable rendering with an auto-selected unit ("12.5us").
  std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

/// Time needed to serialize `bytes` onto a link of `bits_per_second`.
Time serialization_time(std::uint64_t bytes, double bits_per_second);

/// Bits per second needed to move `bytes` in `interval` (0 if interval == 0).
double rate_bps(std::uint64_t bytes, Time interval);

}  // namespace edp::sim
