// edp::stats — per-flow rate measurement via timer-advanced shift register.
//
// Reproduces the student project of paper §5: "use timer events in
// conjunction with a simple shift register to accurately measure flow rates
// in the data plane". Per flow, bytes are accumulated into the current
// slot; a timer event shifts, and the rate is the window sum divided by its
// span.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/sliding_window.hpp"

namespace edp::stats {

/// Fixed-size table of per-flow windowed byte counters, indexed by
/// flow_id % capacity (hash-indexed state, as in the data plane).
class FlowRateTable {
 public:
  FlowRateTable(std::size_t capacity, std::size_t buckets,
                sim::Time bucket_width);

  /// Data-path update: add `bytes` for `flow_id`.
  void observe(std::uint32_t flow_id, std::uint64_t bytes);

  /// Timer event: shift every flow's window.
  void tick();

  /// Measured rate for a flow, bits per second over the window.
  double rate_bps(std::uint32_t flow_id) const;

  std::size_t capacity() const { return windows_.size(); }
  sim::Time window_span() const {
    return windows_.empty() ? sim::Time::zero() : windows_[0].window_span();
  }

  /// Modeled state footprint: one u64 per bucket per flow slot.
  std::size_t bytes() const {
    return windows_.empty()
               ? 0
               : windows_.size() * windows_[0].buckets() * sizeof(std::uint64_t);
  }

 private:
  std::vector<WindowedAggregate> windows_;
};

}  // namespace edp::stats
