#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace edp::stats {

void Summary::add(double sample) { samples_.push_back(sample); }

double Summary::mean() const {
  if (samples_.empty()) {
    return 0;
  }
  double s = 0;
  for (const double v : samples_) {
    s += v;
  }
  return s / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) {
    return 0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) {
    return 0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0;
  }
  const double m = mean();
  double acc = 0;
  for (const double v : samples_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4g p50=%.4g p99=%.4g max=%.4g", count(), mean(),
                percentile(50), percentile(99), max());
  return buf;
}

}  // namespace edp::stats
