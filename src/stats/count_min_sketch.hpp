// edp::stats — Count-Min Sketch (Cormode & Muthukrishnan, reference [5]).
//
// The paper's running example of state that needs periodic maintenance:
// a CMS must be reset regularly, which on baseline PISA architectures
// burdens the control plane and with timer events is a data-plane no-op.
#pragma once

#include <cstdint>
#include <vector>

namespace edp::stats {

/// Count-Min Sketch with `depth` rows of `width` counters. Guarantees
/// estimate(x) >= true(x), and estimate(x) <= true(x) + eps*N with
/// probability >= 1-delta for width = ceil(e/eps), depth = ceil(ln(1/delta)).
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, std::size_t depth,
                 std::uint64_t seed = 0x5eed);

  /// Dimension the sketch from accuracy targets.
  static CountMinSketch from_error_bounds(double epsilon, double delta,
                                          std::uint64_t seed = 0x5eed);

  void update(std::uint64_t key, std::uint64_t amount = 1);
  std::uint64_t estimate(std::uint64_t key) const;

  /// Whole-structure reset (the operation the paper periodically needs).
  void reset();

  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }
  std::uint64_t total() const { return total_; }

  /// Memory footprint in bytes (for state-requirement comparisons).
  std::size_t bytes() const {
    return counters_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t index(std::size_t row, std::uint64_t key) const;

  std::size_t width_;
  std::size_t depth_;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::uint32_t> counters_;  ///< depth x width, row-major
  std::uint64_t total_ = 0;
};

}  // namespace edp::stats
