#include "stats/active_flows.hpp"

#include <cassert>

namespace edp::stats {

ActiveFlowTracker::ActiveFlowTracker(std::size_t capacity)
    : counts_(capacity, 0) {
  assert(capacity > 0);
}

void ActiveFlowTracker::on_enqueue(std::uint32_t flow_id) {
  auto& c = counts_[flow_id % counts_.size()];
  if (c == 0) {
    ++active_;
  }
  ++c;
}

void ActiveFlowTracker::on_dequeue(std::uint32_t flow_id) {
  auto& c = counts_[flow_id % counts_.size()];
  if (c == 0) {
    // Dequeue without matching enqueue (collision artifact); ignore rather
    // than underflow — mirrors saturating register arithmetic in hardware.
    return;
  }
  --c;
  if (c == 0) {
    assert(active_ > 0);
    --active_;
  }
}

}  // namespace edp::stats
