#include "stats/sliding_window.hpp"

#include <cassert>

namespace edp::stats {

WindowedAggregate::WindowedAggregate(std::size_t buckets,
                                     sim::Time bucket_width)
    : bucket_width_(bucket_width), sums_(buckets) {
  assert(buckets > 0 && bucket_width > sim::Time::zero());
}

void WindowedAggregate::observe(std::uint64_t value) {
  Bucket& b = sums_[head_];
  b.sum += value;
  b.max = std::max(b.max, value);
  ++b.count;
}

void WindowedAggregate::advance() {
  head_ = (head_ + 1) % sums_.size();
  sums_[head_] = Bucket{};
}

std::uint64_t WindowedAggregate::window_sum() const {
  std::uint64_t total = 0;
  for (const auto& b : sums_) {
    total += b.sum;
  }
  return total;
}

std::uint64_t WindowedAggregate::window_max() const {
  std::uint64_t m = 0;
  for (const auto& b : sums_) {
    m = std::max(m, b.max);
  }
  return m;
}

double WindowedAggregate::window_mean_per_bucket() const {
  return static_cast<double>(window_sum()) /
         static_cast<double>(sums_.size());
}

}  // namespace edp::stats
