// edp::stats — time-window functions.
//
// "Computing a function of a signal over a moving window of time" is one of
// the paper's motivating operations (§1, §5 "Time-Windowed Network
// Measurement"). The hardware-friendly implementation is a shift register
// of per-bucket partial aggregates advanced by timer events; that is
// exactly what `WindowedAggregate` models.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace edp::stats {

/// A ring of `buckets` partial sums covering `bucket_width` each; `advance`
/// (driven by a timer event) retires the oldest bucket. Queries return the
/// aggregate over the whole window (buckets * bucket_width of history).
class WindowedAggregate {
 public:
  WindowedAggregate(std::size_t buckets, sim::Time bucket_width);

  /// Fold a sample into the current bucket.
  void observe(std::uint64_t value);

  /// Timer tick: rotate to a fresh bucket (dropping the oldest).
  void advance();

  std::uint64_t window_sum() const;
  std::uint64_t window_max() const;
  double window_mean_per_bucket() const;

  sim::Time window_span() const {
    return bucket_width_ * static_cast<std::int64_t>(sums_.size());
  }
  sim::Time bucket_width() const { return bucket_width_; }
  std::size_t buckets() const { return sums_.size(); }

 private:
  struct Bucket {
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t count = 0;
  };

  sim::Time bucket_width_;
  std::vector<Bucket> sums_;
  std::size_t head_ = 0;  ///< current bucket
};

}  // namespace edp::stats
