// edp::stats — active flow counting from enqueue/dequeue events.
//
// "Number of buffered flows" is the paper's canonical congestion signal
// that *requires* state updates on both enqueue and dequeue (§1). The
// tracker keeps a per-slot packet count (hash-indexed by flow id); a flow
// is active while its count is non-zero, and the active total is maintained
// incrementally — O(1) per event, exactly the register program a P4
// handler pair would run.
#pragma once

#include <cstdint>
#include <vector>

namespace edp::stats {

class ActiveFlowTracker {
 public:
  explicit ActiveFlowTracker(std::size_t capacity);

  /// Enqueue handler: flow gained a buffered packet.
  void on_enqueue(std::uint32_t flow_id);

  /// Dequeue/drop handler: flow lost a buffered packet.
  void on_dequeue(std::uint32_t flow_id);

  /// Flows with >= 1 buffered packet (exact up to hash collisions).
  std::uint32_t active_flows() const { return active_; }

  /// Buffered packets of one flow's slot.
  std::uint32_t flow_packets(std::uint32_t flow_id) const {
    return counts_[flow_id % counts_.size()];
  }

  std::size_t capacity() const { return counts_.size(); }
  std::size_t bytes() const { return counts_.size() * sizeof(std::uint32_t); }

 private:
  std::vector<std::uint32_t> counts_;
  std::uint32_t active_ = 0;
};

}  // namespace edp::stats
