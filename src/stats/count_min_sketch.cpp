#include "stats/count_min_sketch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace edp::stats {
namespace {

/// 64-bit mix (splitmix64 finalizer) used as the row hash.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), counters_(width * depth, 0) {
  assert(width > 0 && depth > 0);
  seeds_.reserve(depth);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < depth; ++i) {
    s = mix(s + 0x9e3779b97f4a7c15ULL);
    seeds_.push_back(s);
  }
}

CountMinSketch CountMinSketch::from_error_bounds(double epsilon, double delta,
                                                 std::uint64_t seed) {
  assert(epsilon > 0 && delta > 0 && delta < 1);
  const auto width =
      static_cast<std::size_t>(std::ceil(std::exp(1.0) / epsilon));
  const auto depth =
      static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<std::size_t>(width, 1),
                        std::max<std::size_t>(depth, 1), seed);
}

std::size_t CountMinSketch::index(std::size_t row, std::uint64_t key) const {
  return row * width_ + static_cast<std::size_t>(mix(key ^ seeds_[row]) %
                                                 width_);
}

void CountMinSketch::update(std::uint64_t key, std::uint64_t amount) {
  total_ += amount;
  for (std::size_t r = 0; r < depth_; ++r) {
    auto& c = counters_[index(r, key)];
    const std::uint64_t next = std::uint64_t{c} + amount;
    c = next > UINT32_MAX ? UINT32_MAX
                          : static_cast<std::uint32_t>(next);
  }
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
  std::uint64_t best = UINT64_MAX;
  for (std::size_t r = 0; r < depth_; ++r) {
    best = std::min<std::uint64_t>(best, counters_[index(r, key)]);
  }
  return best;
}

void CountMinSketch::reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
  total_ = 0;
}

}  // namespace edp::stats
