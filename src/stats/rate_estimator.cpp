#include "stats/rate_estimator.hpp"

namespace edp::stats {

FlowRateTable::FlowRateTable(std::size_t capacity, std::size_t buckets,
                             sim::Time bucket_width) {
  windows_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    windows_.emplace_back(buckets, bucket_width);
  }
}

void FlowRateTable::observe(std::uint32_t flow_id, std::uint64_t bytes) {
  windows_[flow_id % windows_.size()].observe(bytes);
}

void FlowRateTable::tick() {
  for (auto& w : windows_) {
    w.advance();
  }
}

double FlowRateTable::rate_bps(std::uint32_t flow_id) const {
  const auto& w = windows_[flow_id % windows_.size()];
  const double span_s = w.window_span().as_seconds();
  if (span_s <= 0) {
    return 0;
  }
  return static_cast<double>(w.window_sum()) * 8.0 / span_s;
}

}  // namespace edp::stats
