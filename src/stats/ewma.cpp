#include "stats/ewma.hpp"

#include <cmath>

namespace edp::stats {

void DecayingRate::observe(std::uint64_t bytes, sim::Time now) {
  const sim::Time dt = now - last_;
  if (dt > sim::Time::zero()) {
    const double decay = std::exp(-dt.as_seconds() / tau_.as_seconds());
    rate_ *= decay;
    // The new bytes arrived "now"; spread them over tau so a steady stream
    // converges to its true rate.
    rate_ += static_cast<double>(bytes) / tau_.as_seconds();
    last_ = now;
  } else {
    rate_ += static_cast<double>(bytes) / tau_.as_seconds();
  }
}

double DecayingRate::bytes_per_sec(sim::Time now) const {
  const sim::Time dt = now - last_;
  if (dt <= sim::Time::zero()) {
    return rate_;
  }
  return rate_ * std::exp(-dt.as_seconds() / tau_.as_seconds());
}

}  // namespace edp::stats
