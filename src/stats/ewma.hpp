// edp::stats — exponentially weighted moving average.
#pragma once

#include "sim/time.hpp"

namespace edp::stats {

/// Classic sample-driven EWMA: v <- (1-w)*v + w*sample. Used by RED for
/// average queue size and by the HULA utilization estimator.
class Ewma {
 public:
  explicit Ewma(double weight = 0.002) : weight_(weight) {}

  void observe(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
      return;
    }
    value_ = (1.0 - weight_) * value_ + weight_ * sample;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() {
    value_ = 0;
    initialized_ = false;
  }

 private:
  double weight_;
  double value_ = 0;
  bool initialized_ = false;
};

/// Time-decayed rate estimator (bytes/sec): on each observation the old
/// estimate is decayed by exp(-dt/tau) before folding in the new bytes.
/// This is the register+timestamp formulation implementable in one PISA
/// stage, used by HULA's link utilization tracking.
class DecayingRate {
 public:
  explicit DecayingRate(sim::Time tau) : tau_(tau) {}

  void observe(std::uint64_t bytes, sim::Time now);

  /// Current estimate decayed to `now`, in bytes/sec.
  double bytes_per_sec(sim::Time now) const;

  sim::Time tau() const { return tau_; }

 private:
  sim::Time tau_;
  sim::Time last_ = sim::Time::zero();
  double rate_ = 0;  ///< bytes/sec as of last_
};

}  // namespace edp::stats
