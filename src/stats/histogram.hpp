// edp::stats — simple measurement helpers for the bench harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edp::stats {

/// Accumulates samples; reports count/mean/min/max/percentiles. Percentile
/// queries sort a copy, so they are for end-of-run reporting, not the hot
/// path.
class Summary {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0,100]; nearest-rank. Returns 0 for an empty summary.
  double percentile(double p) const;
  double stddev() const;

  /// "n=100 mean=1.5 p50=1.2 p99=4.0 max=5.1"
  std::string to_string() const;

 private:
  std::vector<double> samples_;
};

}  // namespace edp::stats
