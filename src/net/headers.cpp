#include "net/headers.hpp"

namespace edp::net {

// ---- Ethernet --------------------------------------------------------------

EthernetHeader EthernetHeader::decode(const Packet& p, std::size_t off) {
  EthernetHeader h;
  std::array<std::uint8_t, 6> d{}, s{};
  for (std::size_t i = 0; i < 6; ++i) {
    d[i] = p.u8(off + i);
    s[i] = p.u8(off + 6 + i);
  }
  h.dst = MacAddress(d);
  h.src = MacAddress(s);
  h.ether_type = p.u16(off + 12);
  return h;
}

void EthernetHeader::encode(Packet& p, std::size_t off) const {
  for (std::size_t i = 0; i < 6; ++i) {
    p.set_u8(off + i, dst.bytes()[i]);
    p.set_u8(off + 6 + i, src.bytes()[i]);
  }
  p.set_u16(off + 12, ether_type);
}

// ---- VLAN ------------------------------------------------------------------

VlanHeader VlanHeader::decode(const Packet& p, std::size_t off) {
  VlanHeader h;
  const std::uint16_t tci = p.u16(off);
  h.pcp = static_cast<std::uint8_t>(tci >> 13);
  h.dei = (tci >> 12) & 1;
  h.vid = tci & 0x0fff;
  h.ether_type = p.u16(off + 2);
  return h;
}

void VlanHeader::encode(Packet& p, std::size_t off) const {
  const std::uint16_t tci = static_cast<std::uint16_t>(
      (std::uint16_t{pcp} << 13) | (std::uint16_t{dei} << 12) |
      (vid & 0x0fff));
  p.set_u16(off, tci);
  p.set_u16(off + 2, ether_type);
}

// ---- IPv4 ------------------------------------------------------------------

Ipv4Header Ipv4Header::decode(const Packet& p, std::size_t off) {
  Ipv4Header h;
  const std::uint8_t tos = p.u8(off + 1);
  h.dscp = tos >> 2;
  h.ecn = tos & 0x3;
  h.total_length = p.u16(off + 2);
  h.identification = p.u16(off + 4);
  h.ttl = p.u8(off + 8);
  h.protocol = p.u8(off + 9);
  h.checksum = p.u16(off + 10);
  h.src = Ipv4Address(p.u32(off + 12));
  h.dst = Ipv4Address(p.u32(off + 16));
  return h;
}

void Ipv4Header::encode(Packet& p, std::size_t off) const {
  p.set_u8(off, 0x45);  // version 4, IHL 5 (no options)
  p.set_u8(off + 1, static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x3)));
  p.set_u16(off + 2, total_length);
  p.set_u16(off + 4, identification);
  p.set_u16(off + 6, 0x4000);  // DF set, no fragments
  p.set_u8(off + 8, ttl);
  p.set_u8(off + 9, protocol);
  p.set_u16(off + 10, checksum);
  p.set_u32(off + 12, src.value());
  p.set_u32(off + 16, dst.value());
}

void Ipv4Header::update_checksum() {
  // RFC 1071 over the 20 encoded bytes with the checksum field zeroed,
  // computed arithmetically word-by-word — same result as encoding into a
  // scratch buffer and summing it, without the buffer round-trip (this runs
  // once per packet built or deparsed).
  std::uint32_t s = 0;
  s += (std::uint32_t{0x45} << 8) |
       static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x3));
  s += total_length;
  s += identification;
  s += 0x4000;  // flags: DF set, no fragments
  s += (std::uint32_t{ttl} << 8) | protocol;
  s += src.value() >> 16;
  s += src.value() & 0xffff;
  s += dst.value() >> 16;
  s += dst.value() & 0xffff;
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  checksum = static_cast<std::uint16_t>(~s);
}

bool Ipv4Header::checksum_ok() const {
  Ipv4Header copy = *this;
  copy.update_checksum();
  return copy.checksum == checksum;
}

// ---- UDP -------------------------------------------------------------------

UdpHeader UdpHeader::decode(const Packet& p, std::size_t off) {
  UdpHeader h;
  h.src_port = p.u16(off);
  h.dst_port = p.u16(off + 2);
  h.length = p.u16(off + 4);
  h.checksum = p.u16(off + 6);
  return h;
}

void UdpHeader::encode(Packet& p, std::size_t off) const {
  p.set_u16(off, src_port);
  p.set_u16(off + 2, dst_port);
  p.set_u16(off + 4, length);
  p.set_u16(off + 6, checksum);
}

// ---- TCP -------------------------------------------------------------------

TcpHeader TcpHeader::decode(const Packet& p, std::size_t off) {
  TcpHeader h;
  h.src_port = p.u16(off);
  h.dst_port = p.u16(off + 2);
  h.seq = p.u32(off + 4);
  h.ack = p.u32(off + 8);
  h.flags = static_cast<std::uint8_t>(p.u16(off + 12) & 0x3f);
  h.window = p.u16(off + 14);
  h.checksum = p.u16(off + 16);
  return h;
}

void TcpHeader::encode(Packet& p, std::size_t off) const {
  p.set_u16(off, src_port);
  p.set_u16(off + 2, dst_port);
  p.set_u32(off + 4, seq);
  p.set_u32(off + 8, ack);
  // Data offset 5 words (no options) in the high nibble.
  p.set_u16(off + 12, static_cast<std::uint16_t>((5 << 12) | flags));
  p.set_u16(off + 14, window);
  p.set_u16(off + 16, checksum);
  p.set_u16(off + 18, 0);  // urgent pointer unused
}

// ---- HULA probe ------------------------------------------------------------

HulaProbeHeader HulaProbeHeader::decode(const Packet& p, std::size_t off) {
  HulaProbeHeader h;
  h.tor_id = p.u32(off);
  h.path_util_permille = p.u32(off + 4);
  h.origin_ts_ps = p.u64(off + 8);
  return h;
}

void HulaProbeHeader::encode(Packet& p, std::size_t off) const {
  p.set_u32(off, tor_id);
  p.set_u32(off + 4, path_util_permille);
  p.set_u64(off + 8, origin_ts_ps);
}

// ---- Liveness echo ---------------------------------------------------------

LivenessHeader LivenessHeader::decode(const Packet& p, std::size_t off) {
  LivenessHeader h;
  h.kind = p.u8(off);
  h.seq = p.u16(off + 2);
  h.sender_id = p.u32(off + 4);
  h.ts_ps = p.u64(off + 8);
  return h;
}

void LivenessHeader::encode(Packet& p, std::size_t off) const {
  p.set_u8(off, kind);
  p.set_u8(off + 1, 0);
  p.set_u16(off + 2, seq);
  p.set_u32(off + 4, sender_id);
  p.set_u64(off + 8, ts_ps);
}

// ---- INT report ------------------------------------------------------------

IntReportHeader IntReportHeader::decode(const Packet& p, std::size_t off) {
  IntReportHeader h;
  h.switch_id = p.u32(off);
  h.queue_id = p.u16(off + 4);
  h.flags = p.u16(off + 6);
  h.queue_depth_bytes = p.u32(off + 8);
  h.active_flows = p.u32(off + 12);
  h.drops = p.u32(off + 16);
  h.ts_ps = p.u64(off + 20);
  return h;
}

void IntReportHeader::encode(Packet& p, std::size_t off) const {
  p.set_u32(off, switch_id);
  p.set_u16(off + 4, queue_id);
  p.set_u16(off + 6, flags);
  p.set_u32(off + 8, queue_depth_bytes);
  p.set_u32(off + 12, active_flows);
  p.set_u32(off + 16, drops);
  p.set_u64(off + 20, ts_ps);
}

// ---- KV cache --------------------------------------------------------------

KvHeader KvHeader::decode(const Packet& p, std::size_t off) {
  KvHeader h;
  h.op = p.u8(off);
  h.seq = p.u16(off + 2);
  h.key = p.u64(off + 4);
  h.value = p.u64(off + 12);
  return h;
}

void KvHeader::encode(Packet& p, std::size_t off) const {
  p.set_u8(off, op);
  p.set_u8(off + 1, 0);
  p.set_u16(off + 2, seq);
  p.set_u64(off + 4, key);
  p.set_u64(off + 12, value);
}

}  // namespace edp::net
