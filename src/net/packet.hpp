// edp::net — the wire packet.
//
// A `Packet` is an owned byte buffer plus the intrinsic metadata a switch
// port attaches on arrival (timestamp, ingress port, unique trace id). All
// multi-byte accessors are big-endian, i.e. network order, so serialized
// buffers look exactly like real wire captures.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/object_pool.hpp"
#include "sim/time.hpp"

namespace edp::net {

/// Process-wide counters for the pooled packet payload buffers (see
/// packet.cpp). `allocated` is the number of acquires the pool could not
/// serve from a recycled buffer — i.e. real allocator traffic. Benches
/// sample this before/after a timed phase to assert the steady state runs
/// at zero allocations per event.
sim::PoolStats packet_buffer_pool_stats();

/// Intrinsic (non-programmable) packet metadata, set by the device.
struct PacketMeta {
  sim::Time arrival = sim::Time::zero();  ///< time the first bit arrived
  std::uint16_t ingress_port = 0;         ///< device port of arrival
  std::uint64_t trace_id = 0;             ///< unique id for tracing/tests
  std::uint8_t recirc_count = 0;          ///< times re-submitted to ingress
};

/// An owned, mutable packet. Cheap to move; copying duplicates the payload
/// (used for multicast/broadcast and control-plane punts).
///
/// Payload buffers are pooled: the sized constructor draws a recycled
/// buffer and the destructor returns it, so in steady state packet churn
/// performs no heap allocation. Moves are noexcept (required by the
/// scheduler's InlineCallback slots, which relocate on growth).
class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}
  /// An all-zero packet of `size` bytes (e.g. padding, carrier frames).
  /// Draws its buffer from the process-wide pool.
  explicit Packet(std::size_t size);

  Packet(const Packet& o);
  Packet& operator=(const Packet& o);
  Packet(Packet&& o) noexcept
      : bytes_(std::move(o.bytes_)), meta_(o.meta_) {}
  Packet& operator=(Packet&& o) noexcept;
  ~Packet();

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::span<std::uint8_t> bytes() { return bytes_; }

  PacketMeta& meta() { return meta_; }
  const PacketMeta& meta() const { return meta_; }

  // ---- big-endian field accessors ----------------------------------------
  // All offsets are byte offsets from the start of the packet. Reads out of
  // range assert in debug builds and return 0 in release; writes out of
  // range assert and are dropped. Parsers must bounds-check with size().
  //
  // Defined inline: header encode/decode is a dense run of these, and the
  // compiler folds adjacent byte shuffles only when it can see the bodies.

  std::uint8_t u8(std::size_t off) const {
    if (off >= bytes_.size()) {
      assert(false && "packet read out of range");
      return 0;
    }
    return bytes_[off];
  }

  std::uint16_t u16(std::size_t off) const {
    if (off + 2 > bytes_.size()) {
      assert(false && "packet read out of range");
      return 0;
    }
    return static_cast<std::uint16_t>((bytes_[off] << 8) | bytes_[off + 1]);
  }

  std::uint32_t u32(std::size_t off) const {
    if (off + 4 > bytes_.size()) {
      assert(false && "packet read out of range");
      return 0;
    }
    return (std::uint32_t{bytes_[off]} << 24) |
           (std::uint32_t{bytes_[off + 1]} << 16) |
           (std::uint32_t{bytes_[off + 2]} << 8) | bytes_[off + 3];
  }

  std::uint64_t u64(std::size_t off) const {
    if (off + 8 > bytes_.size()) {
      assert(false && "packet read out of range");
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v = (v << 8) | bytes_[off + i];
    }
    return v;
  }

  void set_u8(std::size_t off, std::uint8_t v) {
    if (off >= bytes_.size()) {
      assert(false && "packet write out of range");
      return;
    }
    bytes_[off] = v;
  }

  void set_u16(std::size_t off, std::uint16_t v) {
    if (off + 2 > bytes_.size()) {
      assert(false && "packet write out of range");
      return;
    }
    bytes_[off] = static_cast<std::uint8_t>(v >> 8);
    bytes_[off + 1] = static_cast<std::uint8_t>(v);
  }

  void set_u32(std::size_t off, std::uint32_t v) {
    if (off + 4 > bytes_.size()) {
      assert(false && "packet write out of range");
      return;
    }
    for (std::size_t i = 0; i < 4; ++i) {
      bytes_[off + i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
    }
  }

  void set_u64(std::size_t off, std::uint64_t v) {
    if (off + 8 > bytes_.size()) {
      assert(false && "packet write out of range");
      return;
    }
    for (std::size_t i = 0; i < 8; ++i) {
      bytes_[off + i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  }

  /// Append raw bytes / grow with zeros.
  void append(std::span<const std::uint8_t> data);
  void pad_to(std::size_t size);

  /// Drop the contents but keep the buffer's capacity (re-emit into the
  /// same storage without reallocating).
  void clear() { bytes_.clear(); }
  /// Pre-size the buffer so a known-length re-emit grows it at most once.
  void reserve(std::size_t n) { bytes_.reserve(n); }

  /// Remove `n` bytes from the front (decapsulation). n > size() clears.
  void strip_front(std::size_t n);

  /// Insert `n` zero bytes at offset `off` (encapsulation, e.g. INT push).
  void insert_zeros(std::size_t off, std::size_t n);

 private:
  std::vector<std::uint8_t> bytes_;
  PacketMeta meta_;
};

}  // namespace edp::net
