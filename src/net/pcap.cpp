#include "net/pcap.hpp"

namespace edp::net {
namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // host order, usec timestamps
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;

}  // namespace

PcapWriter::PcapWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return;
  }
  // Global header: magic, version 2.4, tz offset 0, sigfigs 0, snaplen,
  // link type.
  put_u32(kMagic);
  put_u16(2);
  put_u16(4);
  put_u32(0);
  put_u32(0);
  put_u32(kSnapLen);
  put_u32(kLinkTypeEthernet);
}

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void PcapWriter::put_u32(std::uint32_t v) {
  std::fwrite(&v, sizeof v, 1, file_);
}

void PcapWriter::put_u16(std::uint16_t v) {
  std::fwrite(&v, sizeof v, 1, file_);
}

void PcapWriter::write(const Packet& packet, sim::Time when) {
  if (file_ == nullptr) {
    return;
  }
  const std::int64_t us_total = when.ps() / 1'000'000;
  put_u32(static_cast<std::uint32_t>(us_total / 1'000'000));  // seconds
  put_u32(static_cast<std::uint32_t>(us_total % 1'000'000));  // microseconds
  const auto len = static_cast<std::uint32_t>(packet.size());
  const std::uint32_t caplen = len < kSnapLen ? len : kSnapLen;
  put_u32(caplen);
  put_u32(len);
  std::fwrite(packet.bytes().data(), 1, caplen, file_);
  ++packets_;
}

void PcapWriter::flush() {
  if (file_ != nullptr) {
    std::fflush(file_);
  }
}

}  // namespace edp::net
