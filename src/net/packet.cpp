#include "net/packet.hpp"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <utility>

namespace edp::net {

// ---- pooled payload buffers ------------------------------------------------
//
// Every simulated packet owns a std::vector<uint8_t>; at millions of packet
// events per second, constructing and destroying those vectors is the
// dominant allocator traffic in the whole simulator. The pool below
// recycles them: a thread-local cache serves the single-threaded fast path
// with no synchronization, backed by a mutex-protected central freelist so
// buffers survive the parallel runtime's short-lived worker threads (each
// run_until() spawns fresh workers; their caches flush to the central pool
// on thread exit, and new workers refill from it in batches).
//
// Stats are process-wide relaxed atomics — the hook behind
// packet_buffer_pool_stats(), which benches use to prove the steady state
// allocates nothing.

namespace {

// Buffers above this capacity are dropped rather than pooled (pathological
// one-off packets must not pin memory); normal and jumbo frames fit.
constexpr std::size_t kMaxPooledCapacity = 16384;
constexpr std::size_t kThreadCacheMax = 256;
constexpr std::size_t kRefillBatch = 64;
constexpr std::size_t kCentralMax = 4096;

struct Counters {
  std::atomic<std::uint64_t> acquired{0};
  std::atomic<std::uint64_t> reused{0};
  std::atomic<std::uint64_t> allocated{0};
  std::atomic<std::uint64_t> released{0};
  std::atomic<std::uint64_t> dropped{0};
};
Counters& counters() {
  static Counters c;
  return c;
}

using Buffer = std::vector<std::uint8_t>;

class CentralPool {
 public:
  /// Move up to `want` buffers into `out`.
  void refill(std::vector<Buffer>& out, std::size_t want) {
    std::lock_guard<std::mutex> lock(mu_);
    while (want-- > 0 && !buffers_.empty()) {
      out.push_back(std::move(buffers_.back()));
      buffers_.pop_back();
    }
  }

  /// Absorb a thread cache (worker exit / overflow flush). Buffers beyond
  /// the central bound are dropped to keep the pool's footprint fixed.
  void absorb(std::vector<Buffer>& in) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& b : in) {
      if (buffers_.size() >= kCentralMax) {
        counters().dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      buffers_.push_back(std::move(b));
    }
    in.clear();
  }

 private:
  std::mutex mu_;
  std::vector<Buffer> buffers_;
};

// Intentionally leaked: worker threads (and the main thread) flush their
// caches here from thread_local destructors, whose order relative to
// static destruction is unsequenced — a never-destroyed pool is immune.
CentralPool& central() {
  static CentralPool* pool = new CentralPool;
  return *pool;
}

struct ThreadCache {
  std::vector<Buffer> buffers;
  ~ThreadCache() { central().absorb(buffers); }
};
thread_local ThreadCache t_cache;

/// A recycled (or, on miss, fresh) buffer holding `size` zero bytes.
Buffer acquire_buffer(std::size_t size) {
  counters().acquired.fetch_add(1, std::memory_order_relaxed);
  auto& cache = t_cache.buffers;
  if (cache.empty()) {
    central().refill(cache, kRefillBatch);
  }
  if (!cache.empty() && cache.back().capacity() >= size) {
    Buffer b = std::move(cache.back());
    cache.pop_back();
    counters().reused.fetch_add(1, std::memory_order_relaxed);
    b.assign(size, 0);  // full zero fill: recycled bytes must not leak
    return b;
  }
  counters().allocated.fetch_add(1, std::memory_order_relaxed);
  return Buffer(size, 0);
}

void release_buffer(Buffer&& b) {
  if (b.capacity() == 0) {
    return;  // nothing worth recycling (default-constructed / moved-from)
  }
  if (b.capacity() > kMaxPooledCapacity) {
    counters().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto& cache = t_cache.buffers;
  if (cache.size() >= kThreadCacheMax) {
    central().absorb(cache);
  }
  counters().released.fetch_add(1, std::memory_order_relaxed);
  b.clear();
  cache.push_back(std::move(b));
}

}  // namespace

sim::PoolStats packet_buffer_pool_stats() {
  sim::PoolStats s;
  const Counters& c = counters();
  s.acquired = c.acquired.load(std::memory_order_relaxed);
  s.reused = c.reused.load(std::memory_order_relaxed);
  s.allocated = c.allocated.load(std::memory_order_relaxed);
  s.released = c.released.load(std::memory_order_relaxed);
  s.dropped = c.dropped.load(std::memory_order_relaxed);
  return s;
}

Packet::Packet(std::size_t size) : bytes_(acquire_buffer(size)) {}

Packet::Packet(const Packet& o) : bytes_(acquire_buffer(0)), meta_(o.meta_) {
  bytes_.assign(o.bytes_.begin(), o.bytes_.end());
}

Packet& Packet::operator=(const Packet& o) {
  if (this != &o) {
    // Reuse our own capacity; no pool round-trip needed.
    bytes_.assign(o.bytes_.begin(), o.bytes_.end());
    meta_ = o.meta_;
  }
  return *this;
}

Packet& Packet::operator=(Packet&& o) noexcept {
  if (this != &o) {
    release_buffer(std::move(bytes_));
    bytes_ = std::move(o.bytes_);
    meta_ = o.meta_;
  }
  return *this;
}

Packet::~Packet() { release_buffer(std::move(bytes_)); }

void Packet::append(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Packet::pad_to(std::size_t size) {
  if (bytes_.size() < size) {
    bytes_.resize(size, 0);
  }
}

void Packet::strip_front(std::size_t n) {
  if (n >= bytes_.size()) {
    bytes_.clear();
    return;
  }
  bytes_.erase(bytes_.begin(),
               bytes_.begin() + static_cast<std::ptrdiff_t>(n));
}

void Packet::insert_zeros(std::size_t off, std::size_t n) {
  assert(off <= bytes_.size());
  bytes_.insert(bytes_.begin() + static_cast<std::ptrdiff_t>(off), n, 0);
}

}  // namespace edp::net
