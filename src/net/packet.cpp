#include "net/packet.hpp"

#include <cassert>

namespace edp::net {

std::uint8_t Packet::u8(std::size_t off) const {
  if (off >= bytes_.size()) {
    assert(false && "packet read out of range");
    return 0;
  }
  return bytes_[off];
}

std::uint16_t Packet::u16(std::size_t off) const {
  if (off + 2 > bytes_.size()) {
    assert(false && "packet read out of range");
    return 0;
  }
  return static_cast<std::uint16_t>((bytes_[off] << 8) | bytes_[off + 1]);
}

std::uint32_t Packet::u32(std::size_t off) const {
  if (off + 4 > bytes_.size()) {
    assert(false && "packet read out of range");
    return 0;
  }
  return (std::uint32_t{bytes_[off]} << 24) |
         (std::uint32_t{bytes_[off + 1]} << 16) |
         (std::uint32_t{bytes_[off + 2]} << 8) | bytes_[off + 3];
}

std::uint64_t Packet::u64(std::size_t off) const {
  if (off + 8 > bytes_.size()) {
    assert(false && "packet read out of range");
    return 0;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v = (v << 8) | bytes_[off + i];
  }
  return v;
}

void Packet::set_u8(std::size_t off, std::uint8_t v) {
  if (off >= bytes_.size()) {
    assert(false && "packet write out of range");
    return;
  }
  bytes_[off] = v;
}

void Packet::set_u16(std::size_t off, std::uint16_t v) {
  if (off + 2 > bytes_.size()) {
    assert(false && "packet write out of range");
    return;
  }
  bytes_[off] = static_cast<std::uint8_t>(v >> 8);
  bytes_[off + 1] = static_cast<std::uint8_t>(v);
}

void Packet::set_u32(std::size_t off, std::uint32_t v) {
  if (off + 4 > bytes_.size()) {
    assert(false && "packet write out of range");
    return;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    bytes_[off + i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
  }
}

void Packet::set_u64(std::size_t off, std::uint64_t v) {
  if (off + 8 > bytes_.size()) {
    assert(false && "packet write out of range");
    return;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    bytes_[off + i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

void Packet::append(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Packet::pad_to(std::size_t size) {
  if (bytes_.size() < size) {
    bytes_.resize(size, 0);
  }
}

void Packet::strip_front(std::size_t n) {
  if (n >= bytes_.size()) {
    bytes_.clear();
    return;
  }
  bytes_.erase(bytes_.begin(),
               bytes_.begin() + static_cast<std::ptrdiff_t>(n));
}

void Packet::insert_zeros(std::size_t off, std::size_t n) {
  assert(off <= bytes_.size());
  bytes_.insert(bytes_.begin() + static_cast<std::ptrdiff_t>(off), n, 0);
}

}  // namespace edp::net
