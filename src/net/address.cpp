#include "net/address.hpp"

#include <cassert>
#include <cstdio>

namespace edp::net {

MacAddress MacAddress::parse(const std::string& text) {
  unsigned v[6];
  const int n = std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1],
                            &v[2], &v[3], &v[4], &v[5]);
  if (n != 6) {
    assert(false && "malformed MAC address");
    return MacAddress{};
  }
  std::array<std::uint8_t, 6> b{};
  for (int i = 0; i < 6; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v[i] & 0xff);
  }
  return MacAddress(b);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

Ipv4Address Ipv4Address::parse(const std::string& text) {
  unsigned a, b, c, d;
  const int n = std::sscanf(text.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    assert(false && "malformed IPv4 address");
    return Ipv4Address{};
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c),
                     static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace edp::net
