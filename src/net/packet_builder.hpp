// edp::net — fluent packet construction for hosts, generators, and tests.
#pragma once

#include <cstdint>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace edp::net {

/// Builds a well-formed packet layer by layer, filling lengths and
/// checksums at `build()` time. Layers must be added outermost-first.
///
///   Packet p = PacketBuilder()
///       .ethernet(src_mac, dst_mac)
///       .ipv4(src_ip, dst_ip, kIpProtoUdp)
///       .udp(1234, 80)
///       .payload(512)
///       .build();
class PacketBuilder {
 public:
  PacketBuilder();

  PacketBuilder& ethernet(MacAddress src, MacAddress dst,
                          std::uint16_t ether_type = kEtherTypeIpv4);
  PacketBuilder& vlan(std::uint16_t vid, std::uint8_t pcp = 0);
  PacketBuilder& ipv4(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                      std::uint8_t ttl = 64, std::uint8_t dscp = 0);
  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                     std::uint32_t seq = 0, std::uint8_t flags = 0x10);
  PacketBuilder& hula_probe(const HulaProbeHeader& h);
  PacketBuilder& liveness(const LivenessHeader& h);
  PacketBuilder& int_report(const IntReportHeader& h);
  PacketBuilder& kv(const KvHeader& h);

  /// Append `n` deterministic payload bytes.
  PacketBuilder& payload(std::size_t n);
  /// Pad the final packet to at least `n` bytes (min Ethernet frame = 60
  /// without FCS).
  PacketBuilder& pad_to(std::size_t n);

  /// Finalize: patch IPv4 total_length + checksum and UDP length, then
  /// return the packet. The builder is left empty.
  Packet build();

 private:
  Packet pkt_;
  // Offsets of headers that need length/checksum back-patching; SIZE_MAX
  // when the layer is absent.
  std::size_t ipv4_off_;
  std::size_t udp_off_;
  std::size_t min_size_ = 0;
};

/// Convenience: a minimal UDP packet of `total_size` bytes on the wire.
Packet make_udp_packet(Ipv4Address src, Ipv4Address dst,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::size_t total_size);

}  // namespace edp::net
