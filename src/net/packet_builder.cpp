#include "net/packet_builder.hpp"

#include <cassert>

namespace edp::net {
namespace {

/// Grow the packet by `bytes` zeros at the end and return the old size
/// (the offset the new layer starts at).
std::size_t extend(Packet& p, std::size_t bytes) {
  const std::size_t off = p.size();
  p.pad_to(off + bytes);
  return off;
}

}  // namespace

PacketBuilder::PacketBuilder()
    // Start from a pooled zero-size buffer so layer-by-layer growth runs in
    // recycled capacity instead of allocating per packet.
    : pkt_(std::size_t{0}), ipv4_off_(SIZE_MAX), udp_off_(SIZE_MAX) {}

PacketBuilder& PacketBuilder::ethernet(MacAddress src, MacAddress dst,
                                       std::uint16_t ether_type) {
  const std::size_t off = extend(pkt_, EthernetHeader::kSize);
  EthernetHeader h;
  h.src = src;
  h.dst = dst;
  h.ether_type = ether_type;
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::vlan(std::uint16_t vid, std::uint8_t pcp) {
  // The Ethernet layer must already be present; rewrite its ether_type to
  // VLAN and carry the original type into the tag.
  assert(pkt_.size() >= EthernetHeader::kSize);
  const std::uint16_t inner_type = pkt_.u16(12);
  pkt_.set_u16(12, kEtherTypeVlan);
  const std::size_t off = extend(pkt_, VlanHeader::kSize);
  VlanHeader h;
  h.vid = vid;
  h.pcp = pcp;
  h.ether_type = inner_type;
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(Ipv4Address src, Ipv4Address dst,
                                   std::uint8_t protocol, std::uint8_t ttl,
                                   std::uint8_t dscp) {
  ipv4_off_ = extend(pkt_, Ipv4Header::kSize);
  Ipv4Header h;
  h.src = src;
  h.dst = dst;
  h.protocol = protocol;
  h.ttl = ttl;
  h.dscp = dscp;
  h.encode(pkt_, ipv4_off_);
  return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port,
                                  std::uint16_t dst_port) {
  udp_off_ = extend(pkt_, UdpHeader::kSize);
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.encode(pkt_, udp_off_);
  return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port,
                                  std::uint16_t dst_port, std::uint32_t seq,
                                  std::uint8_t flags) {
  const std::size_t off = extend(pkt_, TcpHeader::kSize);
  TcpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.seq = seq;
  h.flags = flags;
  h.window = 0xffff;
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::hula_probe(const HulaProbeHeader& h) {
  const std::size_t off = extend(pkt_, HulaProbeHeader::kSize);
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::liveness(const LivenessHeader& h) {
  const std::size_t off = extend(pkt_, LivenessHeader::kSize);
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::int_report(const IntReportHeader& h) {
  const std::size_t off = extend(pkt_, IntReportHeader::kSize);
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::kv(const KvHeader& h) {
  const std::size_t off = extend(pkt_, KvHeader::kSize);
  h.encode(pkt_, off);
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::size_t n) {
  const std::size_t off = extend(pkt_, n);
  // Write the 0,1,2,... ramp straight into the buffer: one bounds check for
  // the whole run instead of a set_u8 per byte.
  std::uint8_t* p = pkt_.bytes().data() + off;
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  return *this;
}

PacketBuilder& PacketBuilder::pad_to(std::size_t n) {
  min_size_ = n;
  return *this;
}

Packet PacketBuilder::build() {
  pkt_.pad_to(min_size_);
  if (ipv4_off_ != SIZE_MAX) {
    auto ip = Ipv4Header::decode(pkt_, ipv4_off_);
    ip.total_length =
        static_cast<std::uint16_t>(pkt_.size() - ipv4_off_);
    ip.update_checksum();
    ip.encode(pkt_, ipv4_off_);
  }
  if (udp_off_ != SIZE_MAX) {
    auto udp = UdpHeader::decode(pkt_, udp_off_);
    udp.length = static_cast<std::uint16_t>(pkt_.size() - udp_off_);
    udp.encode(pkt_, udp_off_);
  }
  Packet out = std::move(pkt_);
  pkt_ = Packet{std::size_t{0}};
  ipv4_off_ = udp_off_ = SIZE_MAX;
  min_size_ = 0;
  return out;
}

Packet make_udp_packet(Ipv4Address src, Ipv4Address dst,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::size_t total_size) {
  constexpr std::size_t kHeaders =
      EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize;
  const std::size_t payload =
      total_size > kHeaders ? total_size - kHeaders : 0;
  return PacketBuilder()
      .ethernet(MacAddress::from_u64(0x020000000001),
                MacAddress::from_u64(0x020000000002))
      .ipv4(src, dst, kIpProtoUdp)
      .udp(src_port, dst_port)
      .payload(payload)
      .pad_to(total_size)
      .build();
}

}  // namespace edp::net
