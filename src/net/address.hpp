// edp::net — MAC and IPv4 address value types.
#pragma once

#include <array>
#include <cstdint>
#include <compare>
#include <string>

namespace edp::net {

/// 48-bit Ethernet MAC address, stored in network (big-endian) byte order.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> b) : bytes_(b) {}

  /// Build from the low 48 bits of an integer (0x0000aabbccddeeff form).
  static constexpr MacAddress from_u64(std::uint64_t v) {
    return MacAddress({static_cast<std::uint8_t>(v >> 40),
                       static_cast<std::uint8_t>(v >> 32),
                       static_cast<std::uint8_t>(v >> 24),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)});
  }
  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  /// Parse "aa:bb:cc:dd:ee:ff". Returns broadcast on malformed input is NOT
  /// acceptable, so malformed input asserts in debug and yields zero.
  static MacAddress parse(const std::string& text);

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes_) {
      v = (v << 8) | b;
    }
    return v;
  }
  constexpr bool is_broadcast() const { return to_u64() == 0xffffffffffffULL; }

  constexpr auto operator<=>(const MacAddress&) const = default;

  std::string to_string() const;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

/// IPv4 address held as a host-order 32-bit integer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted quad "10.0.1.2"; asserts in debug / zero on bad input.
  static Ipv4Address parse(const std::string& text);

  constexpr std::uint32_t value() const { return value_; }

  /// True if `other` falls inside this/`prefix_len`.
  constexpr bool matches_prefix(Ipv4Address other, int prefix_len) const {
    if (prefix_len <= 0) {
      return true;
    }
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffU : ~((1U << (32 - prefix_len)) - 1);
    return (value_ & mask) == (other.value_ & mask);
  }

  constexpr auto operator<=>(const Ipv4Address&) const = default;

  std::string to_string() const;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace edp::net

template <>
struct std::hash<edp::net::Ipv4Address> {
  std::size_t operator()(const edp::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<edp::net::MacAddress> {
  std::size_t operator()(const edp::net::MacAddress& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.to_u64());
  }
};
