// edp::net — pcap capture writer.
//
// Records simulated packets into a classic libpcap file (readable by
// tcpdump/Wireshark), with timestamps taken from the simulation clock.
// Attach one to any packet stream — a Host's receive hook, a switch TX
// callback — to debug an experiment exactly like a real network.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace edp::net {

class PcapWriter {
 public:
  /// Opens `path` and writes the global pcap header (microsecond
  /// timestamps, LINKTYPE_ETHERNET). Check ok() before use.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Append one packet with the given simulated capture time.
  void write(const Packet& packet, sim::Time when);

  std::uint64_t packets_written() const { return packets_; }

  /// Flush buffered records to disk (also done on destruction).
  void flush();

 private:
  void put_u32(std::uint32_t v);
  void put_u16(std::uint16_t v);

  std::FILE* file_ = nullptr;
  std::uint64_t packets_ = 0;
};

}  // namespace edp::net
