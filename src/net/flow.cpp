#include "net/flow.hpp"

#include <array>
#include <cstdio>

#include "net/headers.hpp"

namespace edp::net {
namespace {

/// CRC-32 lookup table generated once at first use (IEEE reflected poly).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xedb88320U ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::string FiveTuple::to_string() const {
  char buf[80];
  std::snprintf(buf, sizeof buf, "%s:%u->%s:%u/%u", src.to_string().c_str(),
                src_port, dst.to_string().c_str(), dst_port, protocol);
  return buf;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xffffffffU;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

std::uint32_t fnv1a(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 16777619U;
  }
  return h;
}

std::uint32_t flow_id_src_dst(Ipv4Address src, Ipv4Address dst) {
  std::array<std::uint8_t, 8> buf{};
  for (std::size_t i = 0; i < 4; ++i) {
    buf[i] = static_cast<std::uint8_t>(src.value() >> (24 - 8 * i));
    buf[4 + i] = static_cast<std::uint8_t>(dst.value() >> (24 - 8 * i));
  }
  return crc32(buf);
}

std::uint32_t flow_id_five_tuple(const FiveTuple& t) {
  std::array<std::uint8_t, 13> buf{};
  for (std::size_t i = 0; i < 4; ++i) {
    buf[i] = static_cast<std::uint8_t>(t.src.value() >> (24 - 8 * i));
    buf[4 + i] = static_cast<std::uint8_t>(t.dst.value() >> (24 - 8 * i));
  }
  buf[8] = static_cast<std::uint8_t>(t.src_port >> 8);
  buf[9] = static_cast<std::uint8_t>(t.src_port);
  buf[10] = static_cast<std::uint8_t>(t.dst_port >> 8);
  buf[11] = static_cast<std::uint8_t>(t.dst_port);
  buf[12] = t.protocol;
  return crc32(buf);
}

FiveTuple extract_five_tuple(const Packet& p) {
  FiveTuple t;
  if (p.size() < EthernetHeader::kSize + Ipv4Header::kSize) {
    return t;
  }
  const auto eth = EthernetHeader::decode(p, 0);
  std::size_t ip_off = EthernetHeader::kSize;
  std::uint16_t ether_type = eth.ether_type;
  if (ether_type == kEtherTypeVlan) {
    if (p.size() < ip_off + VlanHeader::kSize + Ipv4Header::kSize) {
      return t;
    }
    const auto vlan = VlanHeader::decode(p, ip_off);
    ether_type = vlan.ether_type;
    ip_off += VlanHeader::kSize;
  }
  if (ether_type != kEtherTypeIpv4) {
    return t;
  }
  const auto ip = Ipv4Header::decode(p, ip_off);
  t.src = ip.src;
  t.dst = ip.dst;
  t.protocol = ip.protocol;
  const std::size_t l4_off = ip_off + Ipv4Header::kSize;
  if ((ip.protocol == kIpProtoTcp || ip.protocol == kIpProtoUdp) &&
      p.size() >= l4_off + 4) {
    t.src_port = p.u16(l4_off);
    t.dst_port = p.u16(l4_off + 2);
  }
  return t;
}

}  // namespace edp::net
