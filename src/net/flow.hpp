// edp::net — flow identification.
//
// Data-plane programs index per-flow state by a hash of packet fields; the
// paper's microburst example hashes (ip.src ++ ip.dst). We provide the
// classic 5-tuple, the 2-tuple the paper uses, and the hash functions the
// PISA `hash` primitive exposes (CRC32 and FNV-1a, the two commonly offered
// by P4 targets).
#pragma once

#include <cstdint>
#include <compare>
#include <span>
#include <string>

#include "net/address.hpp"
#include "net/packet.hpp"

namespace edp::net {

/// TCP/UDP 5-tuple. For non-TCP/UDP packets the ports are zero.
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  auto operator<=>(const FiveTuple&) const = default;
  std::string to_string() const;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the `hash` extern most P4
/// targets provide.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// FNV-1a 32-bit, the cheap alternative hash used for sketch rows.
std::uint32_t fnv1a(std::span<const std::uint8_t> data, std::uint32_t seed = 0x811c9dc5U);

/// The paper's flow id: hash(ip.src ++ ip.dst) — CRC32 over the 8 bytes.
std::uint32_t flow_id_src_dst(Ipv4Address src, Ipv4Address dst);

/// Hash of the full 5-tuple (used for ECMP and per-flow queues).
std::uint32_t flow_id_five_tuple(const FiveTuple& t);

/// Extract the 5-tuple from an Ethernet/IPv4/{TCP,UDP} packet. Returns a
/// zero tuple for non-IPv4 packets (callers treat hash(0-tuple) as flow 0).
FiveTuple extract_five_tuple(const Packet& p);

}  // namespace edp::net

template <>
struct std::hash<edp::net::FiveTuple> {
  std::size_t operator()(const edp::net::FiveTuple& t) const noexcept {
    return edp::net::flow_id_five_tuple(t);
  }
};
