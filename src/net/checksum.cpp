#include "net/checksum.hpp"

namespace edp::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the pending high byte with this low byte.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (std::uint64_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += std::uint64_t{data[i]} << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t v) {
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(v >> 8),
                                 static_cast<std::uint8_t>(v)};
  add(bytes);
}

void ChecksumAccumulator::add_u32(std::uint32_t v) {
  add_u16(static_cast<std::uint16_t>(v >> 16));
  add_u16(static_cast<std::uint16_t>(v));
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint64_t s = sum_;
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  return static_cast<std::uint16_t>(~s);
}

}  // namespace edp::net
