// edp::net — RFC 1071 internet checksum.
#pragma once

#include <cstdint>
#include <span>

namespace edp::net {

/// One's-complement sum over `data` (odd final byte is padded with zero),
/// folded to 16 bits and complemented — the value that goes on the wire.
/// A buffer containing a correct checksum field sums to 0xffff before the
/// final complement, i.e. `internet_checksum` over it returns 0.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Incremental accumulator for checksums over scattered regions
/// (pseudo-header + payload).
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);

  /// Fold and complement.
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  ///< true if an odd byte is pending alignment
};

}  // namespace edp::net
