// edp::net — wire header codecs.
//
// Every header is a plain struct with `kSize`, `decode(packet, offset)` and
// `encode(packet, offset)`; encode/decode are exact inverses (tested by the
// round-trip property suite). Standard headers follow their RFC layouts;
// the experiment-specific headers (HULA probe, liveness echo, INT report,
// KV cache) use fixed formats documented inline.
#pragma once

#include <cstdint>

#include "net/address.hpp"
#include "net/packet.hpp"

namespace edp::net {

// EtherTypes used in this repository.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
/// HULA path-utilization probes (IEEE experimental EtherType space).
inline constexpr std::uint16_t kEtherTypeHula = 0x88b5;
/// Data-plane liveness echo protocol (experimental EtherType space).
inline constexpr std::uint16_t kEtherTypeLiveness = 0x88b6;
/// Carrier frames injected by the Event Merger to ferry event metadata when
/// no ingress packet is available. Never forwarded out of the switch.
inline constexpr std::uint16_t kEtherTypeCarrier = 0xed00;

// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

// Well-known UDP ports for the in-network-computing apps.
inline constexpr std::uint16_t kPortKvCache = 9999;
inline constexpr std::uint16_t kPortIntReport = 5432;

/// Ethernet II header (no FCS; the simulator does not model bit errors).
struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;

  static EthernetHeader decode(const Packet& p, std::size_t off = 0);
  void encode(Packet& p, std::size_t off = 0) const;
};

/// 802.1Q VLAN tag (appears after the Ethernet src MAC).
struct VlanHeader {
  static constexpr std::size_t kSize = 4;

  std::uint8_t pcp = 0;        ///< priority code point (3 bits)
  bool dei = false;            ///< drop eligible indicator
  std::uint16_t vid = 0;       ///< VLAN id (12 bits)
  std::uint16_t ether_type = 0;

  static VlanHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

/// IPv4 header, fixed 20 bytes (options are not modeled).
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t dscp = 0;  ///< 6 bits
  std::uint8_t ecn = 0;   ///< 2 bits; apps use this for multi-bit marking
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  static Ipv4Header decode(const Packet& p, std::size_t off);
  /// Encodes with the stored checksum; call update_checksum() first when
  /// building packets.
  void encode(Packet& p, std::size_t off) const;
  /// Recompute `checksum` from the other fields (RFC 1071 over the header).
  void update_checksum();
  /// True if the stored checksum matches the computed one.
  bool checksum_ok() const;
};

/// UDP header (checksum optional; 0 = not computed, as allowed for IPv4).
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  static UdpHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

/// TCP header, fixed 20 bytes (options are not modeled).
struct TcpHeader {
  static constexpr std::size_t kSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;  ///< FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;

  static TcpHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

/// HULA probe: carries the max link utilization seen along the path toward
/// `tor_id`, plus the originating timestamp for staleness measurement.
/// Format: tor_id:u32 | path_util_permille:u32 | origin_ts_ps:u64.
struct HulaProbeHeader {
  static constexpr std::size_t kSize = 16;

  std::uint32_t tor_id = 0;
  std::uint32_t path_util_permille = 0;  ///< 0..1000+ (can exceed on overload)
  std::uint64_t origin_ts_ps = 0;

  static HulaProbeHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

/// Liveness echo: request/reply with sender id + sequence + timestamp.
/// Format: kind:u8 | pad:u8 | seq:u16 | sender_id:u32 | ts_ps:u64.
struct LivenessHeader {
  static constexpr std::size_t kSize = 16;
  static constexpr std::uint8_t kRequest = 1;
  static constexpr std::uint8_t kReply = 2;
  static constexpr std::uint8_t kFailureNotice = 3;

  std::uint8_t kind = kRequest;
  std::uint16_t seq = 0;
  std::uint32_t sender_id = 0;
  std::uint64_t ts_ps = 0;

  static LivenessHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

/// INT-style telemetry report sent by the data plane to a monitor (over
/// UDP/kPortIntReport). Aggregated congestion state of one queue.
/// Format: switch_id:u32 | queue_id:u16 | flags:u16 | queue_depth_bytes:u32
///         | active_flows:u32 | drops:u32 | ts_ps:u64.
struct IntReportHeader {
  static constexpr std::size_t kSize = 28;
  static constexpr std::uint16_t kFlagAnomaly = 0x1;

  std::uint32_t switch_id = 0;
  std::uint16_t queue_id = 0;
  std::uint16_t flags = 0;
  std::uint32_t queue_depth_bytes = 0;
  std::uint32_t active_flows = 0;
  std::uint32_t drops = 0;
  std::uint64_t ts_ps = 0;

  static IntReportHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

/// NetCache-style key-value header (over UDP/kPortKvCache).
/// Format: op:u8 | pad:u8 | seq:u16 | key:u64 | value:u64.
struct KvHeader {
  static constexpr std::size_t kSize = 20;
  static constexpr std::uint8_t kGet = 1;
  static constexpr std::uint8_t kSet = 2;
  static constexpr std::uint8_t kReply = 3;

  std::uint8_t op = kGet;
  std::uint16_t seq = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;

  static KvHeader decode(const Packet& p, std::size_t off);
  void encode(Packet& p, std::size_t off) const;
};

}  // namespace edp::net
