#!/usr/bin/env bash
# Regression test for edp_lint's exit-code contract (see the header of
# tools/edp_lint.cpp): the status must be identical across every output
# format (text, json, sarif) and every target/--optimize combination —
#
#   0  every linted program clean (notes allowed)
#   1  at least one warning or error
#   2  usage error (unknown flag, program, target or format)
#
# The dirty case is real, not synthetic: microburst-shared's 3-ported
# SharedRegister fails linerate-tor naively (multiport-unrealizable), and
# the same invocation under --optimize resolves it back to exit 0.
#
# Usage: check_lint_exit_codes.sh <path-to-edp_lint>
set -u

lint="${1:?usage: check_lint_exit_codes.sh <path-to-edp_lint>}"
fail=0

expect() {
  local want="$1"
  shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "check_lint_exit_codes: FAIL: '$*' exited $got, want $want"
    fail=1
  else
    echo "check_lint_exit_codes: ok exit $want: ${*#"$lint"}"
  fi
}

# -- 0: clean (the unconstrained target flags nothing; the optimizer
#       resolves everything the constrained target flags) ---------------------
expect 0 "$lint"
expect 0 "$lint" --format=json
expect 0 "$lint" --format=sarif
expect 0 "$lint" --optimize
expect 0 "$lint" --optimize --target linerate-tor
expect 0 "$lint" --optimize --target linerate-tor --format=json
expect 0 "$lint" --optimize --target linerate-tor --format=sarif

# -- 1: findings, uniformly across formats ------------------------------------
expect 1 "$lint" --target linerate-tor
expect 1 "$lint" --target linerate-tor --format=json
expect 1 "$lint" --target linerate-tor --format=sarif
expect 1 "$lint" microburst-shared --target linerate-tor

# -- --fail-on: the threshold moves the 0/1 boundary, never the contract ------
# Unconstrained, several programs carry needs-aggregation notes: counting
# notes flips the clean run to 1, while raising the bar to errors keeps the
# constrained naive run (warnings only after optimization candidates are
# real errors) at its severity-faithful code.
expect 1 "$lint" --fail-on=note
expect 0 "$lint" --fail-on=error
expect 1 "$lint" --target linerate-tor --fail-on=error
expect 0 "$lint" --optimize --target linerate-tor --fail-on=warning
expect 1 "$lint" --optimize --target linerate-tor --fail-on=note
expect 1 "$lint" microburst-shared --target linerate-tor --fail-on=note

# -- 2: usage errors -----------------------------------------------------------
expect 2 "$lint" --no-such-flag
expect 2 "$lint" no-such-program
expect 2 "$lint" --target no-such-target
expect 2 "$lint" --format=xml
expect 2 "$lint" --target
expect 2 "$lint" --fail-on=bogus

if [ "$fail" -eq 0 ]; then
  echo "check_lint_exit_codes: OK"
fi
exit "$fail"
