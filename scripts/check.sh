#!/usr/bin/env bash
# Full verification: configure, build, run every test and every experiment
# harness. Exits nonzero if anything fails (bench binaries return nonzero
# when their reproduced shape checks are violated).
#
# Tests run in the default configuration (asserts on); benches run from a
# separate Release (-O2 -DNDEBUG) tree, the configuration the committed
# BENCH_*.json numbers and the perf gates assume.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Reuse an already-configured build tree with whatever generator it has;
# prefer Ninja for fresh configures.
if [[ -f build/CMakeCache.txt ]]; then
  cmake -B build -S .
else
  cmake -B build -S . -G Ninja
fi
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

# Hot-path allocation lint: no heap, std::function or deque in the event
# kernel (scripts/lint_hotpath.sh).
echo "=== lint_hotpath ==="
./scripts/lint_hotpath.sh

# Static feasibility analysis: every registered program must lint clean
# unconstrained (docs/ANALYSIS.md). Against the most constrained built-in
# target the *naive* lint is expected dirty (microburst-shared's 3-ported
# register is the optimizer's acceptance case, exit 1); the invariant is
# that the optimizer resolves everything (exit 0), with the exit-code
# contract itself regression-tested.
echo "=== edp_lint ==="
./build/tools/edp_lint
./build/tools/edp_lint --target linerate-tor || [[ $? -eq 1 ]]
./build/tools/edp_lint --optimize --target linerate-tor
./scripts/check_lint_exit_codes.sh ./build/tools/edp_lint

# Scenario engine smoke (docs/WORKLOAD.md): seed x shard digest stability
# for a forwarding app, a parallel replay of the FRR path, and an
# optimized microburst replay (digest must match the naive run above it).
echo "=== edp_scen ==="
./build/tools/edp_scen matrix --app ecn-marking --flows 2000
./build/tools/edp_scen run --app fast-reroute --flows 1000 --shards 2
./build/tools/edp_scen run --app microburst-shared --flows 2000
./build/tools/edp_scen run --app microburst-shared --flows 2000 --optimize

if [[ -f build-release/CMakeCache.txt ]]; then
  cmake -B build-release -S .
else
  cmake --preset release
fi
cmake --build build-release -j "${JOBS}"

for b in build-release/bench/*; do
  if [[ -x "$b" && ! -d "$b" ]]; then
    echo "=== $(basename "$b") ==="
    "$b"
  fi
done

for e in build/examples/example_*; do
  echo "=== $(basename "$e") ==="
  "$e"
done
echo "ALL CHECKS PASSED"
