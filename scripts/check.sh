#!/usr/bin/env bash
# Full verification: configure, build, run every test and every experiment
# harness. Exits nonzero if anything fails (bench binaries return nonzero
# when their reproduced shape checks are violated).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Reuse an already-configured build tree with whatever generator it has;
# prefer Ninja for fresh configures.
if [[ -f build/CMakeCache.txt ]]; then
  cmake -B build -S .
else
  cmake -B build -S . -G Ninja
fi
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

for b in build/bench/*; do
  if [[ -x "$b" && ! -d "$b" ]]; then
    echo "=== $(basename "$b") ==="
    "$b"
  fi
done

for e in build/examples/example_*; do
  echo "=== $(basename "$e") ==="
  "$e"
done
echo "ALL CHECKS PASSED"
