#!/usr/bin/env bash
# Hot-path allocation lint for src/sim/, src/runtime/ and the scenario
# replay loop (src/workload/storm_source.*).
#
# The event kernel's per-event path must not allocate: no heap allocation
# (new/make_unique/make_shared/malloc), no std::function (type-erased heap
# closures — use sim::InlineCallback), no std::deque/std::list (per-node
# allocation — use sim::RingQueue). PR 2 removed these from the hot path;
# this check keeps them out.
#
# Setup-time code (constructors that run once per simulation) may carry an
# explicit `// hotpath-ok: <reason>` annotation on the offending line.
# Comment text is stripped before matching, so prose mentioning a banned
# name does not trip the check. Placement new (`::new (buf)`) is allowed —
# it is how InlineCallback avoids the heap in the first place.
set -u

cd "$(dirname "$0")/.."

# Whole modules whose per-event paths are hot, plus the workload engine's
# replay loop (scenario/replay/fuzzer setup code may allocate; the
# per-event StormSource lanes must not), plus the burst-mode kernel
# consumers in src/core: the merger's per-slot submit path and the timer
# block's per-wake expiry path both run once per event burst, and the
# optimizer's fused-dispatch plan is consulted on every TM event.
files=$(
  {
    find src/sim src/runtime -name '*.hpp' -o -name '*.cpp'
    ls src/workload/storm_source.hpp src/workload/storm_source.cpp
    ls src/core/event_merger.hpp src/core/event_merger.cpp \
       src/core/timer_wheel.hpp src/core/timer_wheel.cpp \
       src/core/dispatch_plan.hpp
  } | sort
)
status=0

check() {
  local pattern="$1"
  local label="$2"
  local hits
  hits=$(for f in $files; do
    awk -v pat="$pattern" -v f="$f" '
      /hotpath-ok/ { next }
      {
        line = $0
        sub(/\/\/.*/, "", line)
        if (line ~ pat) { printf "%s:%d: %s\n", f, NR, $0 }
      }
    ' "$f"
  done)
  if [ -n "$hits" ]; then
    echo "lint_hotpath: banned on the hot path: $label"
    echo "$hits"
    echo
    status=1
  fi
}

check 'std::function' \
  'std::function (type-erased heap closure; use sim::InlineCallback)'
check 'std::(deque|list)[[:space:]]*<' \
  'std::deque / std::list (per-node allocation; use sim::RingQueue)'
# `[^:alnum:_:]new` keeps placement `::new (` and identifiers like
# `new_value` out of scope.
check '(^|[^[:alnum:]_:])new[[:space:](]' \
  'operator new (heap allocation; pool or preallocate instead)'
check '(make_unique|make_shared|[^[:alnum:]_](m|c|re)alloc[[:space:]]*\()' \
  'heap allocation (make_unique/make_shared/malloc family)'

if [ "$status" -eq 0 ]; then
  echo "lint_hotpath: OK ($(echo "$files" | wc -l) files checked)"
fi
exit "$status"
