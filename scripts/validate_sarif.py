#!/usr/bin/env python3
"""Structural validation of SARIF 2.1.0 output from edp_lint.

The container has no jsonschema package, so this checks the SARIF 2.1.0
subset edp_lint emits directly against the spec's structural requirements:
required top-level fields, the tool.driver rule catalogue, and the shape
of every result (ruleId resolution, level vocabulary, locations).

Usage:
    validate_sarif.py [--require-rules=a,b,c] [--codes-from=findings.hpp] \
        <file.sarif>
    validate_sarif.py [--require-rules=a,b,c] [--codes-from=findings.hpp] \
        --run <edp_lint> [args...]

With --run the linter is executed and its stdout validated; a linter exit
status of 1 (findings present) is fine — only 2+ (usage error) or a crash
fails the validation.

--require-rules asserts the named rule ids are declared in every run's
tool.driver.rules catalogue (presence in the catalogue, not in results —
a fully feasible optimizer run legitimately emits no
unresolvable-constraint results).

--codes-from parses the kFindingCodes array out of the given findings.hpp
(the passes' single source of truth) and fails if the SARIF rule catalogue
is not exactly that list, in that order — so sarif.cpp's catalogue cannot
silently drift from the finding codes the passes emit.
"""

import re

import json
import subprocess
import sys

LEVELS = {"none", "note", "warning", "error"}


def fail(msg):
    print(f"validate_sarif: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def parse_finding_codes(path):
    """Extract the kFindingCodes array from findings.hpp."""
    with open(path, encoding="utf-8") as f:
        src = f.read()
    m = re.search(r"kFindingCodes\[\]\s*=\s*\{(.*?)\};", src, re.DOTALL)
    if not m:
        fail(f"no kFindingCodes[] array found in {path}")
    codes = re.findall(r'"([a-z0-9-]+)"', m.group(1))
    if not codes:
        fail(f"kFindingCodes[] in {path} parsed to an empty list")
    return codes


def validate(doc, required_rules=(), expected_codes=None):
    require(isinstance(doc, dict), "top level must be a JSON object")
    require(doc.get("version") == "2.1.0",
            f"version must be '2.1.0', got {doc.get('version')!r}")
    runs = doc.get("runs")
    require(isinstance(runs, list) and runs, "runs must be a non-empty array")

    for i, run in enumerate(runs):
        require(isinstance(run, dict), f"runs[{i}] must be an object")
        driver = run.get("tool", {}).get("driver")
        require(isinstance(driver, dict), f"runs[{i}].tool.driver missing")
        require(isinstance(driver.get("name"), str) and driver["name"],
                f"runs[{i}].tool.driver.name must be a non-empty string")

        rules = driver.get("rules", [])
        require(isinstance(rules, list), f"runs[{i}] rules must be an array")
        rule_ids = []
        for j, rule in enumerate(rules):
            require(isinstance(rule.get("id"), str) and rule["id"],
                    f"rules[{j}].id must be a non-empty string")
            desc = rule.get("shortDescription", {})
            require(isinstance(desc.get("text"), str) and desc["text"],
                    f"rules[{j}].shortDescription.text missing")
            rule_ids.append(rule["id"])
        require(len(rule_ids) == len(set(rule_ids)), "duplicate rule ids")
        for rid in required_rules:
            require(rid in rule_ids,
                    f"runs[{i}] rule catalogue is missing required rule "
                    f"{rid!r}")
        if expected_codes is not None:
            require(rule_ids == expected_codes,
                    f"runs[{i}] rule catalogue drifted from kFindingCodes: "
                    f"sarif={rule_ids} expected={expected_codes}")

        results = run.get("results", [])
        require(isinstance(results, list),
                f"runs[{i}].results must be an array")
        for k, res in enumerate(results):
            where = f"results[{k}]"
            require(isinstance(res, dict), f"{where} must be an object")
            rule_id = res.get("ruleId")
            require(isinstance(rule_id, str) and rule_id,
                    f"{where}.ruleId must be a non-empty string")
            require(not rule_ids or rule_id in rule_ids,
                    f"{where}.ruleId {rule_id!r} not in the rule catalogue")
            if "ruleIndex" in res:
                idx = res["ruleIndex"]
                require(isinstance(idx, int) and 0 <= idx < len(rule_ids),
                        f"{where}.ruleIndex out of range")
                require(rule_ids[idx] == rule_id,
                        f"{where}.ruleIndex does not match ruleId")
            require(res.get("level", "warning") in LEVELS,
                    f"{where}.level {res.get('level')!r} invalid")
            msg = res.get("message", {})
            require(isinstance(msg.get("text"), str) and msg["text"],
                    f"{where}.message.text missing")
            locs = res.get("locations", [])
            require(isinstance(locs, list) and locs,
                    f"{where}.locations must be a non-empty array")
            for loc in locs:
                art = loc.get("physicalLocation", {}).get(
                    "artifactLocation", {})
                require(isinstance(art.get("uri"), str) and art["uri"],
                        f"{where} artifactLocation.uri missing")
        print(f"validate_sarif: run[{i}]: tool={driver['name']} "
              f"rules={len(rule_ids)} results={len(results)}")


def main(argv):
    required_rules = []
    expected_codes = None
    for arg in list(argv[1:]):
        if arg.startswith("--require-rules="):
            required_rules.extend(
                r for r in arg.split("=", 1)[1].split(",") if r)
            argv.remove(arg)
        elif arg.startswith("--codes-from="):
            expected_codes = parse_finding_codes(arg.split("=", 1)[1])
            argv.remove(arg)
    if len(argv) >= 3 and argv[1] == "--run":
        proc = subprocess.run(argv[2:], capture_output=True, text=True)
        # Exit 1 = findings exist, which is expected on constrained targets.
        if proc.returncode not in (0, 1):
            fail(f"linter exited {proc.returncode}: {proc.stderr.strip()}")
        raw = proc.stdout
    elif len(argv) == 2 and argv[1] not in ("-h", "--help"):
        with open(argv[1], encoding="utf-8") as f:
            raw = f.read()
    else:
        print(__doc__)
        return 2

    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as e:
        fail(f"output is not valid JSON: {e}")
    validate(doc, required_rules, expected_codes)
    print("validate_sarif: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
